(* Tests for the dissemination protocol model (Fig. 3(b)/(d)'s negotiation
   pattern on the generic engine). *)

open Refill

let ev node label peer : Dissem.event = { node; label; peer }

let labels items =
  List.map
    (fun (i : (Dissem.label, Dissem.event) Engine.item) ->
      Dissem.label_name i.label)
    items

let lossless_round_completes () =
  let rng = Prelude.Rng.create ~seed:1L in
  let out =
    Dissem.generate rng ~broadcaster:0 ~receivers:[ 1; 2; 3 ]
      ~message_loss:0. ~record_loss:0.
  in
  List.iter
    (fun (r, completed) ->
      Alcotest.(check bool) (Printf.sprintf "receiver %d truth" r) true
        completed)
    out.completed;
  List.iter
    (fun (r, progress) ->
      Alcotest.(check int) (Printf.sprintf "receiver %d done" r) 4 progress)
    (Dissem.analyze_round ~broadcaster:0 ~events:out.events)

let single_done_reconstructs_everything () =
  let items, stats =
    Dissem.reconstruct ~broadcaster:0 ~receiver:1
      ~events:[ ev 1 Dissem.L_done None ]
  in
  Alcotest.(check (list string)) "full cascade"
    [ "adv"; "rx_adv"; "req"; "rx_req"; "data"; "rx_data"; "done" ]
    (labels items);
  Alcotest.(check int) "six inferred" 6 stats.emitted_inferred;
  Alcotest.(check int) "done proven" 4
    (Dissem.receiver_progress ~receiver:1 items)

let broadcaster_only_view () =
  (* Only the broadcaster's data record survives: the receiver must have
     heard the advert and requested. *)
  let items, _ =
    Dissem.reconstruct ~broadcaster:0 ~receiver:7
      ~events:[ ev 0 Dissem.L_data (Some 7) ]
  in
  Alcotest.(check (list string)) "cascade through the receiver"
    [ "adv"; "rx_adv"; "req"; "rx_req"; "data" ]
    (labels items);
  (* Data *sent* proves the receiver requested, not that it received. *)
  Alcotest.(check int) "progress capped at requested" 2
    (Dissem.receiver_progress ~receiver:7 items)

let truncated_exchange_not_overclaimed () =
  (* The advert was heard but the request vanished: reconstruction must not
     invent completion. *)
  let events =
    [
      ev 0 Dissem.L_adv None;
      ev 1 Dissem.L_rx_adv (Some 0);
      ev 1 Dissem.L_req (Some 0);
    ]
  in
  let items, stats = Dissem.reconstruct ~broadcaster:0 ~receiver:1 ~events in
  Alcotest.(check int) "nothing inferred" 0 stats.emitted_inferred;
  Alcotest.(check int) "progress = requested" 2
    (Dissem.receiver_progress ~receiver:1 items)

let pair_filtering () =
  (* Receiver 2's records must not leak into receiver 1's reconstruction. *)
  let events =
    [
      ev 0 Dissem.L_adv None;
      ev 0 Dissem.L_rx_req (Some 2);
      ev 0 Dissem.L_data (Some 2);
      ev 1 Dissem.L_rx_adv (Some 0);
    ]
  in
  let items, _ = Dissem.reconstruct ~broadcaster:0 ~receiver:1 ~events in
  Alcotest.(check (list string)) "only pair events" [ "adv"; "rx_adv" ]
    (labels items)

let mixed_round_progress () =
  (* Deterministically build a round where receiver 1 completed and
     receiver 2's data message was lost. *)
  let events =
    [
      ev 0 Dissem.L_adv None;
      ev 1 Dissem.L_rx_adv (Some 0);
      ev 1 Dissem.L_req (Some 0);
      ev 0 Dissem.L_rx_req (Some 1);
      ev 0 Dissem.L_data (Some 1);
      ev 1 Dissem.L_rx_data (Some 0);
      ev 1 Dissem.L_done None;
      ev 2 Dissem.L_rx_adv (Some 0);
      ev 2 Dissem.L_req (Some 0);
      ev 0 Dissem.L_rx_req (Some 2);
      ev 0 Dissem.L_data (Some 2);
      (* rx_data / done on 2 never happened *)
    ]
  in
  match Dissem.analyze_round ~broadcaster:0 ~events with
  | [ (1, p1); (2, p2) ] ->
      Alcotest.(check int) "receiver 1 done" 4 p1;
      Alcotest.(check int) "receiver 2 stuck at requested" 2 p2
  | other ->
      Alcotest.failf "unexpected receivers: %d" (List.length other)

let generator_truncates_consistently =
  QCheck.Test.make
    ~name:"generated rounds: completion iff all three messages survive"
    ~count:100
    QCheck.(pair int64 (float_bound_inclusive 1.))
    (fun (seed, message_loss) ->
      let rng = Prelude.Rng.create ~seed in
      let out =
        Dissem.generate rng ~broadcaster:0 ~receivers:[ 1; 2; 3; 4 ]
          ~message_loss ~record_loss:0.
      in
      (* With no record loss, reconstruction's proven progress must equal
         ground truth completion for every receiver. *)
      let progress = Dissem.analyze_round ~broadcaster:0 ~events:out.events in
      List.for_all
        (fun (r, completed) ->
          match List.assoc_opt r progress with
          | Some p -> if completed then p = 4 else p < 4
          | None -> not completed)
        out.completed)

let reconstruction_never_overclaims =
  QCheck.Test.make
    ~name:"under record loss, proven progress never exceeds ground truth"
    ~count:200
    QCheck.(triple int64 (float_bound_inclusive 0.8) (float_bound_inclusive 0.8))
    (fun (seed, message_loss, record_loss) ->
      let rng = Prelude.Rng.create ~seed in
      let out =
        Dissem.generate rng ~broadcaster:0 ~receivers:[ 1; 2; 3 ]
          ~message_loss ~record_loss
      in
      let progress = Dissem.analyze_round ~broadcaster:0 ~events:out.events in
      List.for_all
        (fun (r, p) ->
          match List.assoc_opt r out.completed with
          | Some true -> true (* any progress is fine *)
          | Some false -> p < 4 (* must not prove completion *)
          | None -> false)
        progress)

(* -- The simulated substrate (Dissem_sim.Rounds) ----------------------------- *)

let sim_setup ?(range = 15.) ?(seed = 5L) positions =
  let topo = Net.Topology.create ~positions ~range in
  let link = Net.Link_model.create ~seed:9L ~topology:topo () in
  let rng = Prelude.Rng.create ~seed in
  (rng, topo, link)

let simulated_round_matches_truth () =
  (* Close-by receivers with strong links: everyone completes, and the
     reconstruction proves it from the simulated logs. *)
  let rng, topo, link =
    sim_setup [| (0., 0.); (3., 0.); (0., 3.); (3., 3.) |]
  in
  let result =
    Dissem_sim.Rounds.run rng ~topology:topo ~link ~broadcaster:0
      Dissem_sim.Rounds.default_config
  in
  Alcotest.(check bool) "advertised" true (result.advertisements > 0);
  List.iter
    (fun (r, completed) ->
      Alcotest.(check bool) (Printf.sprintf "r%d completed" r) true completed)
    result.completed;
  let events = Dissem_sim.Rounds.merged_events result in
  List.iter
    (fun (r, progress) ->
      Alcotest.(check int) (Printf.sprintf "r%d proven done" r) 4 progress)
    (Refill.Dissem.analyze_round ~broadcaster:0 ~events)

let simulated_round_weak_links_partial () =
  (* One receiver at the edge of range: it may fail; reconstruction must
     agree with ground truth exactly on lossless logs. *)
  let rng, topo, link =
    sim_setup [| (0., 0.); (3., 0.); (13.5, 0.) |]
  in
  let result =
    Dissem_sim.Rounds.run rng ~topology:topo ~link ~broadcaster:0
      Dissem_sim.Rounds.default_config
  in
  let events = Dissem_sim.Rounds.merged_events result in
  let progress = Refill.Dissem.analyze_round ~broadcaster:0 ~events in
  List.iter
    (fun (r, completed) ->
      match List.assoc_opt r progress with
      | Some p ->
          Alcotest.(check bool)
            (Printf.sprintf "r%d proven iff completed" r)
            completed (p = 4)
      | None ->
          Alcotest.(check bool)
            (Printf.sprintf "r%d absent implies incomplete" r)
            false completed)
    result.completed

let simulated_logs_well_formed () =
  let rng, topo, link =
    sim_setup [| (0., 0.); (3., 0.); (0., 3.) |]
  in
  let result =
    Dissem_sim.Rounds.run rng ~topology:topo ~link ~broadcaster:0
      Dissem_sim.Rounds.default_config
  in
  (* The broadcaster's adv records match the round counter. *)
  let b_log = List.assoc 0 result.logs in
  let advs =
    List.length
      (List.filter
         (fun (e : Refill.Dissem.event) -> e.label = Refill.Dissem.L_adv)
         b_log)
  in
  Alcotest.(check int) "adv count" result.advertisements advs;
  (* Receivers only write receiver-side labels; the broadcaster only
     broadcaster-side ones. *)
  List.iter
    (fun (node, log) ->
      List.iter
        (fun (e : Refill.Dissem.event) ->
          let broadcaster_side =
            match e.label with
            | Refill.Dissem.L_adv | Refill.Dissem.L_rx_req
            | Refill.Dissem.L_data ->
                true
            | Refill.Dissem.L_rx_adv | Refill.Dissem.L_req
            | Refill.Dissem.L_rx_data | Refill.Dissem.L_done ->
                false
          in
          Alcotest.(check bool) "side matches" (node = 0) broadcaster_side)
        log)
    result.logs

let simulated_soundness_under_record_loss =
  QCheck.Test.make ~name:"simulated rounds: sound under record loss"
    ~count:50
    QCheck.(pair int64 (float_bound_inclusive 0.7))
    (fun (seed, record_loss) ->
      let rng, topo, link =
        sim_setup ~seed
          [| (0., 0.); (3., 0.); (0., 3.); (8., 8.); (12., 0.) |]
      in
      let result =
        Dissem_sim.Rounds.run rng ~topology:topo ~link ~broadcaster:0
          Dissem_sim.Rounds.default_config
      in
      let events =
        List.filter
          (fun _ -> not (Prelude.Rng.bernoulli rng ~p:record_loss))
          (Dissem_sim.Rounds.merged_events result)
      in
      let progress = Refill.Dissem.analyze_round ~broadcaster:0 ~events in
      List.for_all
        (fun (r, p) ->
          match List.assoc_opt r result.completed with
          | Some true -> true
          | Some false -> p < 4
          | None -> false)
        progress)

let epidemic_floods_and_reconstructs () =
  let rng = Prelude.Rng.create ~seed:7L in
  let topo_rng = Prelude.Rng.create ~seed:5L in
  let topo =
    Net.Topology.jittered_grid topo_rng ~nx:5 ~ny:5 ~spacing:10. ~jitter:2.
      ~range:16.
  in
  let link = Net.Link_model.create ~seed:9L ~topology:topo () in
  let result =
    Dissem_sim.Rounds.run_epidemic rng ~topology:topo ~link ~seed:0
      { Dissem_sim.Rounds.default_config with duration = 400. }
  in
  let done_count = List.length (List.filter snd result.completed) in
  (* The data must spread well beyond the seed's one-hop neighborhood. *)
  Alcotest.(check bool)
    (Printf.sprintf "flooded (%d/24)" done_count)
    true
    (done_count > List.length (Net.Topology.neighbors topo 0));
  let events = Dissem_sim.Rounds.merged_events result in
  let progress = Refill.Dissem.analyze_epidemic ~seed:0 ~events in
  List.iter
    (fun (r, completed) ->
      match List.assoc_opt r progress with
      | Some p ->
          Alcotest.(check bool)
            (Printf.sprintf "node %d proven iff completed" r)
            completed (p = 4)
      | None ->
          Alcotest.(check bool)
            (Printf.sprintf "node %d absent implies incomplete" r)
            false completed)
    result.completed

let epidemic_sound_under_loss =
  QCheck.Test.make ~name:"epidemic reconstruction sound under record loss"
    ~count:25
    QCheck.(pair int64 (float_bound_inclusive 0.6))
    (fun (seed, loss) ->
      let rng = Prelude.Rng.create ~seed in
      let topo_rng = Prelude.Rng.create ~seed:5L in
      let topo =
        Net.Topology.jittered_grid topo_rng ~nx:4 ~ny:4 ~spacing:10.
          ~jitter:2. ~range:16.
      in
      let link = Net.Link_model.create ~seed:9L ~topology:topo () in
      let result =
        Dissem_sim.Rounds.run_epidemic rng ~topology:topo ~link ~seed:0
          { Dissem_sim.Rounds.default_config with duration = 250. }
      in
      let events =
        List.filter
          (fun _ -> not (Prelude.Rng.bernoulli rng ~p:loss))
          (Dissem_sim.Rounds.merged_events result)
      in
      let progress = Refill.Dissem.analyze_epidemic ~seed:0 ~events in
      List.for_all
        (fun (r, p) ->
          match List.assoc_opt r result.completed with
          | Some c -> p < 4 || c
          | None -> false)
        progress)

let () =
  Alcotest.run "dissem"
    [
      ( "reconstruction",
        [
          Alcotest.test_case "lossless round" `Quick lossless_round_completes;
          Alcotest.test_case "single done record" `Quick
            single_done_reconstructs_everything;
          Alcotest.test_case "broadcaster-only view" `Quick
            broadcaster_only_view;
          Alcotest.test_case "truncated exchange" `Quick
            truncated_exchange_not_overclaimed;
          Alcotest.test_case "pair filtering" `Quick pair_filtering;
          Alcotest.test_case "mixed round" `Quick mixed_round_progress;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest generator_truncates_consistently;
          QCheck_alcotest.to_alcotest reconstruction_never_overclaims;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "full completion" `Quick
            simulated_round_matches_truth;
          Alcotest.test_case "weak links partial" `Quick
            simulated_round_weak_links_partial;
          Alcotest.test_case "well-formed logs" `Quick
            simulated_logs_well_formed;
          QCheck_alcotest.to_alcotest simulated_soundness_under_record_loss;
        ] );
      ( "epidemic",
        [
          Alcotest.test_case "floods and reconstructs" `Quick
            epidemic_floods_and_reconstructs;
          QCheck_alcotest.to_alcotest epidemic_sound_under_loss;
        ] );
    ]

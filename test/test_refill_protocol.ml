(* Tests for the concrete protocol model: role FSMs, prerequisites, payload
   synthesis, the Table II reconstructions, and loss-cause classification. *)

open Refill

let record node kind : Logsys.Record.t =
  { node; kind; origin = 1; pkt_seq = 0; true_time = 0.; gseq = 0 }

let reconstruct ?(origin = 1) ?(sink = 99) records =
  let config = Protocol.make_config ~records ~origin ~seq:0 ~sink in
  let events = Protocol.events_of_records records in
  let acc = ref [] in
  let stats =
    Engine.process config
      (Engine.Events (Array.of_list events))
      ~emit:(fun it -> acc := it :: !acc)
  in
  let items = List.rev !acc in
  { Flow.origin; seq = 0; items; stats; prov = [||] }

let flow_string flow = Flow.to_string flow

(* -- Role FSMs ----------------------------------------------------------------- *)

let roles () =
  Alcotest.(check bool) "origin" true
    (Protocol.role_of ~origin:1 ~sink:0 1 = Protocol.Origin);
  Alcotest.(check bool) "sink" true
    (Protocol.role_of ~origin:1 ~sink:0 0 = Protocol.Sink);
  Alcotest.(check bool) "forwarder" true
    (Protocol.role_of ~origin:1 ~sink:0 5 = Protocol.Forwarder)

let origin_fsm_shape () =
  let f = Protocol.fsm_of_role Protocol.Origin in
  Alcotest.(check (option int)) "gen from init" (Some Protocol.holding)
    (Fsm.normal_next f ~from:Protocol.init Protocol.L_gen);
  Alcotest.(check (option int)) "no recv from init" None
    (Fsm.normal_next f ~from:Protocol.init Protocol.L_recv);
  Alcotest.(check (option int)) "loop re-reception" (Some Protocol.holding)
    (Fsm.normal_next f ~from:Protocol.acked Protocol.L_recv)

let forwarder_fsm_shape () =
  let f = Protocol.fsm_of_role Protocol.Forwarder in
  Alcotest.(check (option int)) "recv from init" (Some Protocol.holding)
    (Fsm.normal_next f ~from:Protocol.init Protocol.L_recv);
  Alcotest.(check (option int)) "no gen" None
    (Fsm.normal_next f ~from:Protocol.init Protocol.L_gen);
  Alcotest.(check (option int)) "overflow at entry"
    (Some Protocol.overflow_dropped)
    (Fsm.normal_next f ~from:Protocol.init Protocol.L_overflow);
  Alcotest.(check (option int)) "dup while sending"
    (Some Protocol.dup_dropped)
    (Fsm.normal_next f ~from:Protocol.sent Protocol.L_dup)

let sink_fsm_shape () =
  let f = Protocol.fsm_of_role Protocol.Sink in
  Alcotest.(check (option int)) "deliver" (Some Protocol.delivered)
    (Fsm.normal_next f ~from:Protocol.holding Protocol.L_deliver);
  Alcotest.(check (option int)) "sink never sends" None
    (Fsm.normal_next f ~from:Protocol.holding Protocol.L_trans)

let label_mapping () =
  Alcotest.(check string) "trans" "trans"
    (Protocol.label_name (Protocol.label_of_kind (Trans { to_ = 2 })));
  Alcotest.(check string) "deliver" "deliver"
    (Protocol.label_name (Protocol.label_of_kind Deliver));
  List.iter
    (fun s ->
      Alcotest.(check bool) ("state name " ^ s) true (String.length s > 0))
    (List.init Protocol.n_states Protocol.state_name)

(* -- Table II / §IV.C ------------------------------------------------------------ *)

let case1 () =
  (* Input: 1-2 trans, 2-3 recv (node 2's log lost). Paper output:
     1-2 trans, [1-2 recv], [2-3 trans], 2-3 recv. Our model also grounds
     the origin with an inferred [gen]. *)
  let flow =
    reconstruct [ record 1 (Trans { to_ = 2 }); record 3 (Recv { from = 2 }) ]
  in
  Alcotest.(check string) "flow"
    "[gen@1], 1-2 trans, [1-2 recv], [2-3 trans], 2-3 recv"
    (flow_string flow);
  Alcotest.(check int) "three inferred" 3 flow.stats.emitted_inferred;
  Alcotest.(check (list int)) "hop path" [ 1; 2; 3 ] (Flow.nodes_visited flow)

let case2 () =
  (* Input: 1-2 trans, 1-2 ack. Paper: 1-2 trans, [1-2 recv], 1-2 ack;
     verdict: lost at node 2 after successful transmission (acked loss). *)
  let flow =
    reconstruct
      [ record 1 (Trans { to_ = 2 }); record 1 (Ack_recvd { to_ = 2 }) ]
  in
  Alcotest.(check string) "flow" "[gen@1], 1-2 trans, [1-2 recv], 1-2 ack"
    (flow_string flow);
  let v = Classify.classify flow in
  Alcotest.(check string) "acked loss" "acked" (Logsys.Cause.name v.cause);
  Alcotest.(check (option int)) "at node 2" (Some 2) v.loss_node

let case3 () =
  (* Input: 1-2 ack, then 1-2 trans (ack precedes trans). Paper:
     [1-2 trans], [1-2 recv], 1-2 ack, 1-2 trans — the node received and
     forwarded twice; the packet died in the retransmission. *)
  let flow =
    reconstruct
      [ record 1 (Ack_recvd { to_ = 2 }); record 1 (Trans { to_ = 2 }) ]
  in
  Alcotest.(check string) "flow"
    "[gen@1], [1-2 trans], [1-2 recv], 1-2 ack, [?-1 recv], 1-2 trans"
    (flow_string flow);
  let v = Classify.classify flow in
  Alcotest.(check string) "in-air loss" "timeout" (Logsys.Cause.name v.cause);
  Alcotest.(check (option int)) "while node 1 was sending" (Some 1) v.loss_node;
  Alcotest.(check (option int)) "toward node 2" (Some 2) v.next_hop

let case4_records () =
  [
    record 1 (Trans { to_ = 2 });
    record 1 (Ack_recvd { to_ = 2 });
    record 1 (Recv { from = 3 });
    record 1 (Trans { to_ = 2 });
    record 1 (Ack_recvd { to_ = 2 });
    record 2 (Recv { from = 1 });
    record 2 (Trans { to_ = 3 });
    record 2 (Ack_recvd { to_ = 3 });
    record 2 (Trans { to_ = 3 });
    record 3 (Recv { from = 2 });
    record 3 (Trans { to_ = 1 });
    record 3 (Ack_recvd { to_ = 1 });
  ]

let case4 () =
  (* The routing-loop case: complete logs, but only ordering reveals the
     loop and the loss during node 2's second transmission. *)
  let flow = reconstruct (case4_records ()) in
  (* The paper's key inference: node 2's second reception was lost and is
     reconstructed. *)
  let second_recv_inferred =
    List.filter
      (fun (i : Flow.item) ->
        i.node = 2 && i.label = Protocol.L_recv && i.inferred)
      flow.items
  in
  Alcotest.(check int) "[1-2 recv] inferred" 1
    (List.length second_recv_inferred);
  let v = Classify.classify flow in
  Alcotest.(check string) "timeout loss" "timeout" (Logsys.Cause.name v.cause);
  Alcotest.(check (option int)) "lost at node 2" (Some 2) v.loss_node;
  Alcotest.(check (option int)) "transmitting to node 3" (Some 3) v.next_hop

let intra_counter_matches_table_ii () =
  (* [refill_intra_inferences_total] must equal the intra transitions the
     engine actually takes, per Table II case: case 1 and 2 bridge only
     the origin's lost [gen] (1 each); case 3 additionally bridges the
     loop re-reception before the second trans (2); case 4 bridges the
     origin's [gen] and node 2's lost second reception (2). *)
  let module C = Refill_obs.Metrics.Counter in
  let c_intra = C.v "refill_intra_inferences_total" in
  let delta records =
    let before = C.value c_intra in
    ignore (reconstruct records : Flow.t);
    C.value c_intra - before
  in
  Alcotest.(check int) "case 1" 1
    (delta [ record 1 (Trans { to_ = 2 }); record 3 (Recv { from = 2 }) ]);
  Alcotest.(check int) "case 2" 1
    (delta [ record 1 (Trans { to_ = 2 }); record 1 (Ack_recvd { to_ = 2 }) ]);
  Alcotest.(check int) "case 3" 2
    (delta [ record 1 (Ack_recvd { to_ = 2 }); record 1 (Trans { to_ = 2 }) ]);
  Alcotest.(check int) "case 4" 2 (delta (case4_records ()))

let complete_delivery_no_inference () =
  (* A clean end-to-end trace through a sink produces zero inferred events
     and a Delivered verdict. *)
  let records =
    [
      record 1 Gen;
      record 1 (Trans { to_ = 2 });
      record 1 (Ack_recvd { to_ = 2 });
      record 2 (Recv { from = 1 });
      record 2 (Trans { to_ = 0 });
      record 2 (Ack_recvd { to_ = 0 });
      record 0 (Recv { from = 2 });
      record 0 Deliver;
    ]
  in
  let flow = reconstruct ~sink:0 records in
  Alcotest.(check int) "nothing inferred" 0 flow.stats.emitted_inferred;
  Alcotest.(check int) "nothing skipped" 0 flow.stats.skipped;
  let v = Classify.classify flow in
  Alcotest.(check string) "delivered" "delivered" (Logsys.Cause.name v.cause);
  Alcotest.(check bool) "is_delivered" true (Classify.is_delivered flow)

let dup_and_overflow_verdicts () =
  let dup_flow =
    reconstruct
      [
        record 1 Gen;
        record 1 (Trans { to_ = 2 });
        record 2 (Recv { from = 1 });
        record 2 (Trans { to_ = 1 });
        record 1 (Dup { from = 2 });
      ]
  in
  let v = Classify.classify dup_flow in
  Alcotest.(check string) "duplicate" "duplicate" (Logsys.Cause.name v.cause);
  Alcotest.(check (option int)) "at node 1" (Some 1) v.loss_node;
  let ovf_flow =
    reconstruct
      [
        record 1 Gen;
        record 1 (Trans { to_ = 2 });
        record 2 (Overflow { from = 1 });
      ]
  in
  let v = Classify.classify ovf_flow in
  Alcotest.(check string) "overflow" "overflow" (Logsys.Cause.name v.cause);
  Alcotest.(check (option int)) "at node 2" (Some 2) v.loss_node

let timeout_verdict () =
  let flow =
    reconstruct
      [
        record 1 Gen;
        record 1 (Trans { to_ = 2 });
        record 1 (Retx_timeout { to_ = 2 });
      ]
  in
  let v = Classify.classify flow in
  Alcotest.(check string) "timeout" "timeout" (Logsys.Cause.name v.cause);
  Alcotest.(check (option int)) "at sender" (Some 1) v.loss_node;
  Alcotest.(check (option int)) "next hop" (Some 2) v.next_hop

let received_loss_verdict () =
  (* recv logged, nothing after: packet died inside node 2. *)
  let flow =
    reconstruct
      [
        record 1 Gen;
        record 1 (Trans { to_ = 2 });
        record 1 (Ack_recvd { to_ = 2 });
        record 2 (Recv { from = 1 });
      ]
  in
  let v = Classify.classify flow in
  Alcotest.(check string) "received loss" "received" (Logsys.Cause.name v.cause);
  Alcotest.(check (option int)) "at node 2" (Some 2) v.loss_node

let timeout_but_receiver_continued () =
  (* The §III trap: trans without ack does NOT mean the packet was lost —
     the receiver's log shows it moved on. *)
  let records =
    [
      record 1 Gen;
      record 1 (Trans { to_ = 2 });
      record 1 (Retx_timeout { to_ = 2 });
      record 2 (Recv { from = 1 });
      record 2 (Trans { to_ = 0 });
      record 2 (Ack_recvd { to_ = 0 });
      record 0 (Recv { from = 2 });
      record 0 Deliver;
    ]
  in
  let flow = reconstruct ~sink:0 records in
  let v = Classify.classify flow in
  Alcotest.(check string) "delivered despite sender timeout" "delivered"
    (Logsys.Cause.name v.cause)

let gen_only_unknown () =
  let flow = reconstruct [ record 1 Gen ] in
  let v = Classify.classify flow in
  Alcotest.(check string) "unknown" "unknown" (Logsys.Cause.name v.cause);
  Alcotest.(check bool) "empty flow unknown" true
    ((Classify.classify (reconstruct [])).cause = Logsys.Cause.Unknown)

(* -- Payload synthesis ------------------------------------------------------------ *)

let synthesis_finds_peers () =
  (* Case 1's inferred events carry recovered peers. *)
  let flow =
    reconstruct [ record 1 (Trans { to_ = 2 }); record 3 (Recv { from = 2 }) ]
  in
  let inferred = Flow.inferred_items flow in
  let kinds =
    List.filter_map
      (fun (i : Flow.item) ->
        Option.map (fun (r : Logsys.Record.t) -> (i.node, r.kind)) i.payload)
      inferred
  in
  Alcotest.(check bool) "recv on 2 from 1" true
    (List.mem (2, Logsys.Record.Recv { from = 1 }) kinds);
  Alcotest.(check bool) "trans on 2 to 3" true
    (List.mem (2, Logsys.Record.Trans { to_ = 3 }) kinds)

let synthesis_unknown_peer () =
  (* No record points at node 1, so the re-reception peer is unknown. *)
  let flow = reconstruct [ record 1 (Ack_recvd { to_ = 2 }); record 1 (Trans { to_ = 2 }) ] in
  let has_unknown =
    List.exists
      (fun (i : Flow.item) ->
        match i.payload with
        | Some { kind = Logsys.Record.Recv { from }; _ } ->
            from = Protocol.unknown_node
        | _ -> false)
      flow.items
  in
  Alcotest.(check bool) "unknown peer present" true has_unknown

(* -- Flow utilities ----------------------------------------------------------------- *)

let flow_item_accessors () =
  let flow =
    reconstruct [ record 1 (Trans { to_ = 2 }); record 3 (Recv { from = 2 }) ]
  in
  Alcotest.(check int) "length" 5 (Flow.length flow);
  Alcotest.(check int) "logged" 2 (List.length (Flow.logged_items flow));
  Alcotest.(check int) "inferred" 3 (List.length (Flow.inferred_items flow));
  Alcotest.(check (pair int int)) "key" (1, 0) (Flow.packet_key flow);
  (match Flow.last_item flow with
  | Some i -> Alcotest.(check bool) "last is recv" true (i.label = Protocol.L_recv)
  | None -> Alcotest.fail "nonempty");
  Alcotest.(check bool) "empty last" true
    (Flow.last_item { flow with items = [] } = None)

let ablation_flags_change_behaviour () =
  (* Case 2 through the ablation knobs: without intra transitions the ack
     cannot fire from Init (skipped); without inter-node prerequisites the
     receiver's [recv] is no longer inferred. *)
  let records =
    [ record 1 (Trans { to_ = 2 }); record 1 (Ack_recvd { to_ = 2 }) ]
  in
  let logger = Logsys.Logger.create ~n_nodes:3 in
  List.iteri
    (fun i (r : Logsys.Record.t) ->
      Logsys.Logger.log logger { r with gseq = i })
    records;
  let collected = Logsys.Collected.of_logger logger in
  let flow ~use_intra ~use_inter =
    Refill.Reconstruct.packet ~use_intra ~use_inter collected ~origin:1
      ~seq:0 ~sink:99
  in
  let full = flow ~use_intra:true ~use_inter:true in
  Alcotest.(check string) "full inference"
    "[gen@1], 1-2 trans, [1-2 recv], 1-2 ack" (Flow.to_string full);
  let no_intra = flow ~use_intra:false ~use_inter:true in
  Alcotest.(check int) "everything skipped without intra" 2
    no_intra.stats.skipped;
  let no_inter = flow ~use_intra:true ~use_inter:false in
  Alcotest.(check string) "no receiver inference without inter"
    "[gen@1], 1-2 trans, 1-2 ack" (Flow.to_string no_inter)

let sequence_diagram_renders () =
  let flow =
    reconstruct [ record 1 (Trans { to_ = 2 }); record 3 (Recv { from = 2 }) ]
  in
  let d = Flow.to_sequence_diagram flow in
  let contains needle =
    let n = String.length needle and h = String.length d in
    let rec scan i = i + n <= h && (String.sub d i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "has node headers" true (contains "n1" && contains "n2" && contains "n3");
  Alcotest.(check bool) "has arrows" true (contains "->");
  Alcotest.(check bool) "marks inferred" true (contains "[recv]");
  Alcotest.(check string) "empty flow" "(empty flow)\n"
    (Flow.to_sequence_diagram { flow with items = [] })

let () =
  Alcotest.run "refill-protocol"
    [
      ( "fsm-roles",
        [
          Alcotest.test_case "role mapping" `Quick roles;
          Alcotest.test_case "origin shape" `Quick origin_fsm_shape;
          Alcotest.test_case "forwarder shape" `Quick forwarder_fsm_shape;
          Alcotest.test_case "sink shape" `Quick sink_fsm_shape;
          Alcotest.test_case "label mapping" `Quick label_mapping;
        ] );
      ( "table2",
        [
          Alcotest.test_case "case 1" `Quick case1;
          Alcotest.test_case "case 2" `Quick case2;
          Alcotest.test_case "case 3" `Quick case3;
          Alcotest.test_case "case 4" `Quick case4;
          Alcotest.test_case "intra counter matches Table II" `Quick
            intra_counter_matches_table_ii;
        ] );
      ( "classification",
        [
          Alcotest.test_case "clean delivery" `Quick
            complete_delivery_no_inference;
          Alcotest.test_case "dup/overflow" `Quick dup_and_overflow_verdicts;
          Alcotest.test_case "timeout" `Quick timeout_verdict;
          Alcotest.test_case "received loss" `Quick received_loss_verdict;
          Alcotest.test_case "receiver continued" `Quick
            timeout_but_receiver_continued;
          Alcotest.test_case "gen-only unknown" `Quick gen_only_unknown;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "finds peers" `Quick synthesis_finds_peers;
          Alcotest.test_case "unknown peer" `Quick synthesis_unknown_peer;
        ] );
      ( "flow",
        [
          Alcotest.test_case "accessors" `Quick flow_item_accessors;
          Alcotest.test_case "sequence diagram" `Quick
            sequence_diagram_renders;
          Alcotest.test_case "ablation flags" `Quick
            ablation_flags_change_behaviour;
        ] );
    ]

(* Tests for the FSM graph and the intra-node transition derivation
   (§IV.A–B). *)

open Refill

(* The paper's running example shape: a small chain with a loop. *)
let chain () =
  (* 0 --a--> 1 --b--> 2 --c--> 3, plus 3 --d--> 1 (loop back). *)
  let f = Fsm.create ~n_states:4 ~initial:0 in
  Fsm.add_transition f ~src:0 ~dst:1 "a";
  Fsm.add_transition f ~src:1 ~dst:2 "b";
  Fsm.add_transition f ~src:2 ~dst:3 "c";
  Fsm.add_transition f ~src:3 ~dst:1 "d";
  f

let create_validates () =
  Alcotest.check_raises "n_states" (Invalid_argument "Fsm.create: n_states")
    (fun () -> ignore (Fsm.create ~n_states:0 ~initial:0));
  Alcotest.check_raises "initial" (Invalid_argument "Fsm.create: initial")
    (fun () -> ignore (Fsm.create ~n_states:2 ~initial:5))

let add_validates () =
  let f = Fsm.create ~n_states:2 ~initial:0 in
  Alcotest.check_raises "src range"
    (Invalid_argument "Fsm.add_transition: src") (fun () ->
      Fsm.add_transition f ~src:7 ~dst:0 "x")

let duplicates_ignored () =
  let f = Fsm.create ~n_states:2 ~initial:0 in
  Fsm.add_transition f ~src:0 ~dst:1 "x";
  Fsm.add_transition f ~src:0 ~dst:1 "x";
  Alcotest.(check int) "one edge" 1 (List.length (Fsm.transitions f))

let normal_next_lookup () =
  let f = chain () in
  Alcotest.(check (option int)) "0 a" (Some 1) (Fsm.normal_next f ~from:0 "a");
  Alcotest.(check (option int)) "no edge" None (Fsm.normal_next f ~from:0 "b");
  Alcotest.(check (option int)) "loop edge" (Some 1)
    (Fsm.normal_next f ~from:3 "d")

let labels_and_transitions () =
  let f = chain () in
  Alcotest.(check (list string)) "labels in insertion order"
    [ "a"; "b"; "c"; "d" ] (Fsm.labels f);
  Alcotest.(check int) "4 transitions" 4 (List.length (Fsm.transitions f))

let reachability () =
  let f = chain () in
  Alcotest.(check bool) "self" true (Fsm.reachable f ~from:2 2);
  Alcotest.(check bool) "forward" true (Fsm.reachable f ~from:0 3);
  Alcotest.(check bool) "via loop" true (Fsm.reachable f ~from:3 2);
  Alcotest.(check bool) "initial unreachable" false (Fsm.reachable f ~from:1 0)

let shortest_path_basics () =
  let f = chain () in
  Alcotest.(check bool) "empty self path" true
    (Fsm.shortest_path f ~from:1 ~to_:1 = Some []);
  (match Fsm.shortest_path f ~from:0 ~to_:3 with
  | Some path ->
      Alcotest.(check (list string)) "labels along path" [ "a"; "b"; "c" ]
        (List.map (fun (_, _, l) -> l) path)
  | None -> Alcotest.fail "path expected");
  Alcotest.(check bool) "unreachable" true
    (Fsm.shortest_path f ~from:1 ~to_:0 = None)

let shortest_path_prefers_short () =
  (* Two routes 0→3: direct edge "z" and the long chain. BFS must take the
     single edge. *)
  let f = chain () in
  Fsm.add_transition f ~src:0 ~dst:3 "z";
  match Fsm.shortest_path f ~from:0 ~to_:3 with
  | Some [ (0, 3, "z") ] -> ()
  | Some other ->
      Alcotest.failf "expected direct edge, got %d hops" (List.length other)
  | None -> Alcotest.fail "path expected"

let intra_target_unique () =
  let f = chain () in
  (* Event "c" has a single target state 3, reachable from 0: intra defined. *)
  Alcotest.(check (option int)) "unique target" (Some 3)
    (Fsm.intra_target f ~from:0 "c");
  (* Unknown label: no targets. *)
  Alcotest.(check (option int)) "no label" None (Fsm.intra_target f ~from:0 "q")

let intra_target_ambiguous () =
  (* Label "x" targets two distinct states both reachable from 0: no intra
     transition may be derived (the paper's uniqueness condition). *)
  let f = Fsm.create ~n_states:4 ~initial:0 in
  Fsm.add_transition f ~src:0 ~dst:1 "a";
  Fsm.add_transition f ~src:1 ~dst:2 "x";
  Fsm.add_transition f ~src:0 ~dst:3 "x";
  Alcotest.(check (option int)) "ambiguous" None (Fsm.intra_target f ~from:0 "x");
  (* From state 1 only target 2 is reachable: intra defined again. *)
  Alcotest.(check (option int)) "unique from 1" (Some 2)
    (Fsm.intra_target f ~from:1 "x")

let intra_unreachable_target () =
  let f = Fsm.create ~n_states:3 ~initial:0 in
  Fsm.add_transition f ~src:1 ~dst:2 "x";
  (* From 0, state 2 is not reachable at all. *)
  Alcotest.(check (option int)) "unreachable" None
    (Fsm.intra_target f ~from:0 "x")

let infer_intra_path () =
  let f = chain () in
  (* Taking "c" from state 0 implies the lost path a, b. *)
  match Fsm.infer_intra f ~from:0 "c" with
  | Some (lost, target) ->
      Alcotest.(check int) "target" 3 target;
      Alcotest.(check (list string)) "lost labels" [ "a"; "b" ]
        (List.map (fun (_, _, l) -> l) lost)
  | None -> Alcotest.fail "intra expected"

let infer_intra_loop_case () =
  let f = chain () in
  (* From state 3, event "b" implies the loop edge d was taken (lost),
     reaching 1, then b fires into 2. *)
  match Fsm.infer_intra f ~from:3 "b" with
  | Some (lost, target) ->
      Alcotest.(check int) "target" 2 target;
      Alcotest.(check (list string)) "lost loop entry" [ "d" ]
        (List.map (fun (_, _, l) -> l) lost)
  | None -> Alcotest.fail "intra expected"

let infer_intra_none_when_normal_missing_everywhere () =
  let f = chain () in
  Alcotest.(check bool) "no intra for unknown" true
    (Fsm.infer_intra f ~from:0 "q" = None)

(* Property: whenever infer_intra returns a path, replaying it with normal
   transitions is consistent and ends at a source of a [label] edge into the
   returned target. *)
let infer_intra_sound =
  QCheck.Test.make ~name:"infer_intra path replays on normal edges" ~count:200
    QCheck.(
      pair (int_range 2 8)
        (small_list (pair (pair (int_range 0 7) (int_range 0 7)) (int_range 0 3))))
    (fun (n, edges) ->
      let f = Fsm.create ~n_states:n ~initial:0 in
      List.iter
        (fun ((s, d), l) ->
          if s < n && d < n then
            Fsm.add_transition f ~src:s ~dst:d (string_of_int l))
        edges;
      List.for_all
        (fun from ->
          List.for_all
            (fun label ->
              match Fsm.infer_intra f ~from label with
              | None -> true
              | Some (path, target) ->
                  (* Replay: each edge must be a normal transition and the
                     chain must be contiguous from [from]. *)
                  let ok, last =
                    List.fold_left
                      (fun (ok, cur) (s, d, l) ->
                        let valid =
                          s = cur
                          && List.mem (s, d, l) (Fsm.transitions f)
                        in
                        (ok && valid, d))
                      (true, from) path
                  in
                  ok
                  && List.exists
                       (fun (s, d, l) -> s = last && d = target && l = label)
                       (Fsm.transitions f))
            (Fsm.labels f))
        (List.init n Fun.id))

let normal_next_all_order () =
  let f = Fsm.create ~n_states:3 ~initial:0 in
  Fsm.add_transition f ~src:0 ~dst:1 "x";
  Fsm.add_transition f ~src:0 ~dst:2 "x";
  Alcotest.(check (list int)) "insertion order" [ 1; 2 ]
    (Fsm.normal_next_all f ~from:0 "x");
  (* normal_next is pinned to the head: the first-added-wins contract. *)
  Alcotest.(check (option int)) "head wins" (Some 1)
    (Fsm.normal_next f ~from:0 "x");
  Alcotest.(check (list int)) "no match" [] (Fsm.normal_next_all f ~from:1 "x")

let accessors () =
  let f = chain () in
  Alcotest.(check (list (pair int string))) "edges_from 0" [ (1, "a") ]
    (Fsm.edges_from f 0);
  Alcotest.(check (list (pair int string))) "edges_from out of range" []
    (Fsm.edges_from f 99);
  Alcotest.(check (list int)) "targets of b" [ 2 ] (Fsm.targets_of_label f "b");
  Alcotest.(check (list int)) "targets of unknown" []
    (Fsm.targets_of_label f "q")

let projection_accessors () =
  let f = chain () in
  Alcotest.(check (list (pair int int)))
    "edges of b" [ (1, 2) ]
    (Fsm.edges_of_label f "b");
  Alcotest.(check (list (pair int int))) "edges of unknown" []
    (Fsm.edges_of_label f "q");
  (* obs step: the source of the labeled edge only has to be reachable,
     absorbing any number of lost records before the observation. *)
  Alcotest.(check (list int)) "c observable from 0" [ 3 ]
    (Fsm.obs_targets f ~from:0 "c");
  Alcotest.(check (list int)) "c observable from 3 via the loop" [ 3 ]
    (Fsm.obs_targets f ~from:3 "c");
  Alcotest.(check (list int)) "out of range" [] (Fsm.obs_targets f ~from:99 "c");
  (* A second l-edge on a separate branch widens the obs step. *)
  let g = Fsm.create ~n_states:5 ~initial:0 in
  Fsm.add_transition g ~src:0 ~dst:1 "l";
  Fsm.add_transition g ~src:0 ~dst:2 "a";
  Fsm.add_transition g ~src:2 ~dst:3 "l";
  Fsm.add_transition g ~src:4 ~dst:3 "a";
  Alcotest.(check (list int)) "both l targets" [ 1; 3 ]
    (Fsm.obs_targets g ~from:0 "l");
  Alcotest.(check (list int)) "only the local branch" [ 3 ]
    (Fsm.obs_targets g ~from:2 "l")

let derived_intra_edges_listed () =
  let f = chain () in
  let derived = Fsm.derived_intra_edges f in
  (* 0 --c--> 3 is derivable (unique target 3, no normal c-edge at 0). *)
  Alcotest.(check bool) "0-c-3 derived" true (List.mem (0, 3, "c") derived);
  (* Self-loops are omitted, normal edges never repeated. *)
  List.iter
    (fun (s, d, l) ->
      Alcotest.(check bool) "not a self loop" true (s <> d);
      Alcotest.(check bool) "no normal edge shadow" true
        (Fsm.normal_next f ~from:s l = None))
    derived

let to_dot_intra_dashed () =
  let f = chain () in
  let plain =
    Fsm.to_dot ~label_name:Fun.id ~state_name:string_of_int f
  in
  let dot =
    Fsm.to_dot ~intra:true ~label_name:Fun.id ~state_name:string_of_int f
  in
  let count_dashed s =
    let n = String.length s in
    let needle = "style=dashed" in
    let m = String.length needle in
    let rec scan i acc =
      if i + m > n then acc
      else scan (i + 1) (if String.sub s i m = needle then acc + 1 else acc)
    in
    scan 0 0
  in
  Alcotest.(check int) "plain has no dashed edges" 0 (count_dashed plain);
  Alcotest.(check int) "one dashed edge per derived intra"
    (List.length (Fsm.derived_intra_edges f))
    (count_dashed dot)

let to_dot_renders () =
  let f = chain () in
  let dot =
    Fsm.to_dot ~name:"chain" ~label_name:Fun.id
      ~state_name:(fun s -> "s" ^ string_of_int s)
      f
  in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  List.iter
    (fun needle ->
      let contains =
        let n = String.length needle and h = String.length dot in
        let rec scan i =
          i + n <= h && (String.sub dot i n = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) ("contains " ^ needle) true contains)
    [ "\"s0\" -> \"s1\""; "label=\"a\""; "\"s3\" -> \"s1\"" ]

let self_loops_and_mutation_invalidate_cache () =
  let f = chain () in
  (* Warm every memoized layer first, so the mutations below must
     invalidate a populated cache rather than a fresh one. *)
  Alcotest.(check bool) "warm reachable" true (Fsm.reachable f ~from:0 3);
  Alcotest.(check (option int)) "warm normal_next" (Some 1)
    (Fsm.normal_next f ~from:0 "a");
  Alcotest.(check bool) "warm label id" true (Fsm.label_id f "a" >= 0);
  (* A self-loop is a legal transition and queries see it... *)
  Fsm.add_transition f ~src:2 ~dst:2 "again";
  Alcotest.(check (option int)) "self-loop normal_next" (Some 2)
    (Fsm.normal_next f ~from:2 "again");
  Alcotest.(check bool) "self-loop listed" true
    (List.mem (2, 2, "again") (Fsm.transitions f));
  (* ...but derives no intra edge: taking one infers no lost events. *)
  Alcotest.(check bool) "no self-loop intra edge" true
    (List.for_all (fun (x, jc, _) -> x <> jc) (Fsm.derived_intra_edges f));
  (* Duplicate self-loops are ignored like any duplicate. *)
  Fsm.add_transition f ~src:2 ~dst:2 "again";
  Alcotest.(check int) "duplicate self-loop ignored" 5
    (List.length (Fsm.transitions f));
  (* Mutation after queries invalidates the derived layer: the new edge
     is visible immediately through previously-warmed queries. *)
  Alcotest.(check bool) "no shortcut yet" true
    (Fsm.shortest_path f ~from:0 ~to_:3 <> Some [ (0, 3, "jump") ]);
  Fsm.add_transition f ~src:0 ~dst:3 "jump";
  Alcotest.(check bool) "shortcut after mutation" true
    (Fsm.shortest_path f ~from:0 ~to_:3 = Some [ (0, 3, "jump") ]);
  Alcotest.(check bool) "reachability rebuilt" true (Fsm.reachable f ~from:0 3);
  Alcotest.(check (option int)) "old queries still correct" (Some 1)
    (Fsm.normal_next f ~from:0 "a")

(* Acceptance: the memo layer is invisible — every cached query agrees
   with a fresh recomputation from the plain transition list, with
   mutation interleaved so each step re-queries a just-invalidated
   cache. *)
let cached_queries_match_reference =
  let n_states = 5 in
  let labels = [| "a"; "b"; "c"; "d" |] in
  let states = List.init n_states Fun.id in
  let ref_edges_from trs s =
    List.filter_map (fun (s', d, l) -> if s' = s then Some (d, l) else None) trs
  in
  let ref_normal_next trs ~from l =
    List.find_map
      (fun (s, d, l') -> if s = from && l' = l then Some d else None)
      trs
  in
  let ref_bfs trs ~from =
    let parent = Array.make n_states None in
    let seen = Array.make n_states false in
    seen.(from) <- true;
    let q = Queue.create () in
    Queue.add from q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun (v, l) ->
          if not seen.(v) then begin
            seen.(v) <- true;
            parent.(v) <- Some (u, l);
            Queue.add v q
          end)
        (ref_edges_from trs u)
    done;
    (seen, parent)
  in
  let ref_shortest_path trs ~from ~to_ =
    let seen, parent = ref_bfs trs ~from in
    if not seen.(to_) then None
    else
      let rec up v acc =
        if v = from then acc
        else
          match parent.(v) with
          | Some (u, l) -> up u ((u, v, l) :: acc)
          | None -> acc
      in
      Some (up to_ [])
  in
  let ref_targets trs l =
    List.fold_left
      (fun acc (_, d, l') ->
        if l' = l && not (List.mem d acc) then acc @ [ d ] else acc)
      [] trs
  in
  QCheck.Test.make ~name:"cached queries = uncached reference (with mutation)"
    ~count:100
    QCheck.(
      small_list
        (triple
           (int_range 0 (n_states - 1))
           (int_range 0 (n_states - 1))
           (int_range 0 (Array.length labels - 1))))
    (fun edges ->
      let f = Fsm.create ~n_states ~initial:0 in
      List.for_all
        (fun (src, dst, li) ->
          (* Warm the cache, mutate through it, then re-check everything. *)
          ignore (Fsm.reachable f ~from:0 (n_states - 1) : bool);
          Fsm.add_transition f ~src ~dst labels.(li);
          let trs = Fsm.transitions f in
          let ok_labelled =
            List.for_all
              (fun from ->
                List.for_all
                  (fun l ->
                    let reference = ref_normal_next trs ~from l in
                    Fsm.normal_next f ~from l = reference
                    && (let id = Fsm.label_id f l in
                        (if id < 0 then -1 else Fsm.step_id f ~from id)
                        = Option.value ~default:(-1) reference)
                    && Fsm.targets_of_label f l = ref_targets trs l
                    &&
                    let seen, _ = ref_bfs trs ~from in
                    Fsm.intra_target f ~from l
                    =
                    match
                      List.filter (fun jc -> seen.(jc)) (ref_targets trs l)
                    with
                    | [ jc ] -> Some jc
                    | _ -> None)
                  (Array.to_list labels))
              states
          in
          let ok_paths =
            List.for_all
              (fun from ->
                let seen, _ = ref_bfs trs ~from in
                List.for_all
                  (fun to_ ->
                    Fsm.reachable f ~from to_ = seen.(to_)
                    && Fsm.shortest_path f ~from ~to_
                       = ref_shortest_path trs ~from ~to_)
                  states)
              states
          in
          ok_labelled && ok_paths
          && Fsm.edges_from f src = ref_edges_from trs src)
        edges)

let () =
  Alcotest.run "refill-fsm"
    [
      ( "construction",
        [
          Alcotest.test_case "create validates" `Quick create_validates;
          Alcotest.test_case "add validates" `Quick add_validates;
          Alcotest.test_case "duplicates ignored" `Quick duplicates_ignored;
          Alcotest.test_case "self-loops + mutation invalidation" `Quick
            self_loops_and_mutation_invalidate_cache;
          QCheck_alcotest.to_alcotest cached_queries_match_reference;
          Alcotest.test_case "normal_next" `Quick normal_next_lookup;
          Alcotest.test_case "labels/transitions" `Quick labels_and_transitions;
        ] );
      ( "graph",
        [
          Alcotest.test_case "reachability" `Quick reachability;
          Alcotest.test_case "shortest path" `Quick shortest_path_basics;
          Alcotest.test_case "prefers short" `Quick shortest_path_prefers_short;
        ] );
      ( "intra-node derivation",
        [
          Alcotest.test_case "unique target" `Quick intra_target_unique;
          Alcotest.test_case "ambiguous blocked" `Quick intra_target_ambiguous;
          Alcotest.test_case "unreachable blocked" `Quick
            intra_unreachable_target;
          Alcotest.test_case "lost path" `Quick infer_intra_path;
          Alcotest.test_case "loop case" `Quick infer_intra_loop_case;
          Alcotest.test_case "no intra" `Quick
            infer_intra_none_when_normal_missing_everywhere;
          QCheck_alcotest.to_alcotest infer_intra_sound;
        ] );
      ( "accessors",
        [
          Alcotest.test_case "normal_next_all" `Quick normal_next_all_order;
          Alcotest.test_case "edges_from/targets_of_label" `Quick accessors;
          Alcotest.test_case "edges_of_label/obs_targets" `Quick
            projection_accessors;
          Alcotest.test_case "derived intra edges" `Quick
            derived_intra_edges_listed;
        ] );
      ( "dot",
        [
          Alcotest.test_case "renders" `Quick to_dot_renders;
          Alcotest.test_case "intra dashed" `Quick to_dot_intra_dashed;
        ] );
    ]

(* Tests for the CitySee scenario builder. *)

let built = lazy (Scenario.Citysee.build Scenario.Citysee.tiny)

let build_is_connected_with_corner_sink () =
  let t = Lazy.force built in
  let topo = Node.Network.topology t.network in
  Alcotest.(check bool) "connected" true
    (Net.Topology.is_connected topo ~from:t.sink);
  (* The sink sits near the (0,0) corner. *)
  let x, y = Scenario.Citysee.position t t.sink in
  Alcotest.(check bool) "corner sink" true (x < 15. && y < 15.)

let day_mapping () =
  let t = Scenario.Citysee.build { Scenario.Citysee.tiny with days = 3 } in
  let warmup = t.params.warmup and len = t.params.day_length in
  Alcotest.(check int) "day 0" 0 (Scenario.Citysee.day_of t warmup);
  Alcotest.(check int) "day 1" 1 (Scenario.Citysee.day_of t (warmup +. len +. 1.));
  Alcotest.(check int) "clamped below" 0 (Scenario.Citysee.day_of t 0.);
  Alcotest.(check int) "clamped above" 2
    (Scenario.Citysee.day_of t (warmup +. (10. *. len)));
  let lo, hi = Scenario.Citysee.day_bounds t 1 in
  Alcotest.(check (float 1e-9)) "bounds width" len (hi -. lo);
  Alcotest.(check (float 1e-9)) "bounds start" (warmup +. len) lo

let run_produces_traffic () =
  let t = Scenario.Citysee.run Scenario.Citysee.tiny in
  Alcotest.(check bool) "packets generated" true
    (Node.Network.packets_generated t.network > 100);
  let collected = Scenario.Citysee.collected t in
  Alcotest.(check bool) "records collected" true
    (Logsys.Collected.total collected > 500)

let deterministic_runs () =
  let run () =
    let t = Scenario.Citysee.run Scenario.Citysee.tiny in
    ( Node.Network.packets_generated t.network,
      Logsys.Truth.cause_counts (Node.Network.truth t.network) )
  in
  Alcotest.(check bool) "same seed, same world" true (run () = run ())

let different_seeds_differ () =
  let run seed =
    let t =
      Scenario.Citysee.run { Scenario.Citysee.tiny with seed }
    in
    Logsys.Logger.total (Node.Network.logger t.network)
  in
  Alcotest.(check bool) "different worlds" true (run 1L <> run 2L)

let lossy_collection_deterministic () =
  let t = Scenario.Citysee.run Scenario.Citysee.tiny in
  let a = Scenario.Citysee.collected_lossy t Logsys.Loss_model.default in
  let b = Scenario.Citysee.collected_lossy t Logsys.Loss_model.default in
  Alcotest.(check int) "same surviving records" (Logsys.Collected.total a)
    (Logsys.Collected.total b);
  Alcotest.(check bool) "strictly lossy" true
    (Logsys.Collected.total a < Logsys.Collected.total (Scenario.Citysee.collected t))

let snow_degrades_links () =
  let params =
    { Scenario.Citysee.tiny with days = 3; snow_days = Some (1, 1); snow_quality = 0.4 }
  in
  let t = Scenario.Citysee.build params in
  let link = Node.Network.link_model t.network in
  let day1_start, _ = Scenario.Citysee.day_bounds t 1 in
  let day0_start, _ = Scenario.Citysee.day_bounds t 0 in
  (* Compare the same link at the same phase offset in a snowy vs clear
     day; the weather multiplier must show through. *)
  let topo = Node.Network.topology t.network in
  let probe = List.hd (Net.Topology.neighbors topo t.sink) in
  let clear = Net.Link_model.prr link ~now:day0_start ~src:t.sink ~dst:probe in
  ignore clear;
  let with_weather = Net.Link_model.prr link ~now:day1_start ~src:t.sink ~dst:probe in
  Net.Link_model.set_weather link (fun _ -> 1.);
  let without_weather =
    Net.Link_model.prr link ~now:day1_start ~src:t.sink ~dst:probe
  in
  Alcotest.(check (float 1e-9)) "snow multiplier" (without_weather *. 0.4)
    with_weather

let sink_fix_changes_serial () =
  let params =
    {
      Scenario.Citysee.tiny with
      days = 4;
      sink_fix_day = Some 2;
      serial_bad_rate = 0.5;
      serial_good_rate = 0.;
    }
  in
  let t = Scenario.Citysee.run params in
  let truth = Node.Network.truth t.network in
  (* Sink-position received/acked losses must all predate the fix. *)
  let fix_time, _ = Scenario.Citysee.day_bounds t 2 in
  Logsys.Truth.iter truth (fun _ fate ->
      match fate.cause with
      | Logsys.Cause.Received_loss | Logsys.Cause.Acked_loss
        when fate.loss_node = Some t.sink ->
          Alcotest.(check bool) "before fix" true (fate.resolved_at < fix_time)
      | _ -> ())

let bursts_registered () =
  let params = { Scenario.Citysee.tiny with bursts_per_day = 2; days = 3 } in
  let t = Scenario.Citysee.build params in
  let link = Node.Network.link_model t.network in
  Alcotest.(check int) "2 per day for 3 days" 6
    (List.length (Net.Link_model.bursts link))

let server_outages_within_run () =
  let params =
    { Scenario.Citysee.tiny with server_outages = 3; server_outage_mean = 50. }
  in
  let t = Scenario.Citysee.build params in
  let outages = Node.Server.outages (Scenario.Citysee.server t) in
  Alcotest.(check int) "three windows" 3 (List.length outages);
  List.iter
    (fun (start, d) ->
      Alcotest.(check bool) "inside run" true
        (start >= t.params.warmup
        && start +. d <= t.params.warmup +. t.duration +. 1e-6))
    outages

let truth_paths_respect_topology () =
  (* Conservation/consistency: every ground-truth path starts at the
     packet's origin and each hop is a radio neighbor. *)
  let t = Scenario.Citysee.run Scenario.Citysee.tiny in
  let topo = Node.Network.topology t.network in
  let truth = Node.Network.truth t.network in
  Logsys.Truth.iter truth (fun (origin, _) fate ->
      match fate.path with
      | [] -> ()
      | first :: _ ->
          Alcotest.(check int) "path starts at origin" origin first;
          let rec hops = function
            | a :: (b :: _ as rest) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%d-%d are neighbors" a b)
                  true
                  (Net.Topology.in_range topo a b);
                hops rest
            | _ -> ()
          in
          hops fate.path)

let () =
  Alcotest.run "scenario"
    [
      ( "citysee",
        [
          Alcotest.test_case "connected corner sink" `Quick
            build_is_connected_with_corner_sink;
          Alcotest.test_case "day mapping" `Quick day_mapping;
          Alcotest.test_case "traffic" `Quick run_produces_traffic;
          Alcotest.test_case "deterministic" `Quick deterministic_runs;
          Alcotest.test_case "seeds differ" `Quick different_seeds_differ;
          Alcotest.test_case "lossy deterministic" `Quick
            lossy_collection_deterministic;
          Alcotest.test_case "snow" `Quick snow_degrades_links;
          Alcotest.test_case "sink fix" `Quick sink_fix_changes_serial;
          Alcotest.test_case "bursts" `Quick bursts_registered;
          Alcotest.test_case "outages" `Quick server_outages_within_run;
          Alcotest.test_case "paths respect topology" `Quick
            truth_paths_respect_topology;
        ] );
    ]

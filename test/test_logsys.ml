(* Tests for records, loggers, loss models and collected logs. *)

let record node kind ~origin ~seq ~time ~gseq : Logsys.Record.t =
  { node; kind; origin; pkt_seq = seq; true_time = time; gseq }

let r0 node kind = record node kind ~origin:1 ~seq:0 ~time:0. ~gseq:0

(* -- Record ---------------------------------------------------------------- *)

let record_accessors () =
  let trans = r0 4 (Trans { to_ = 7 }) in
  Alcotest.(check string) "kind name" "trans" (Logsys.Record.kind_name trans.kind);
  Alcotest.(check (option int)) "peer" (Some 7) (Logsys.Record.peer trans);
  Alcotest.(check (option (pair int int))) "link" (Some (4, 7))
    (Logsys.Record.link trans);
  Alcotest.(check bool) "sender side" true (Logsys.Record.is_sender_side trans);
  let recv = r0 7 (Recv { from = 4 }) in
  Alcotest.(check (option (pair int int))) "recv link sender-first" (Some (4, 7))
    (Logsys.Record.link recv);
  Alcotest.(check bool) "receiver side" false (Logsys.Record.is_sender_side recv);
  let gen = r0 1 Gen in
  Alcotest.(check (option int)) "gen has no peer" None (Logsys.Record.peer gen);
  Alcotest.(check (pair int int)) "packet key" (1, 0)
    (Logsys.Record.packet_key gen)

let record_to_string () =
  Alcotest.(check string) "paper style" "4-7 trans@4"
    (Logsys.Record.to_string (r0 4 (Trans { to_ = 7 })));
  Alcotest.(check string) "local event" "gen@1"
    (Logsys.Record.to_string (r0 1 Gen))

let record_equal () =
  let a = record 4 (Trans { to_ = 7 }) ~origin:1 ~seq:2 ~time:3. ~gseq:5 in
  Alcotest.(check bool) "reflexive" true (Logsys.Record.equal a a);
  Alcotest.(check bool) "copy equal" true (Logsys.Record.equal a { a with node = 4 });
  Alcotest.(check bool) "node differs" false
    (Logsys.Record.equal a { a with node = 5 });
  Alcotest.(check bool) "kind payload differs" false
    (Logsys.Record.equal a { a with kind = Trans { to_ = 8 } });
  Alcotest.(check bool) "kind constructor differs" false
    (Logsys.Record.equal a { a with kind = Ack_recvd { to_ = 7 } });
  Alcotest.(check bool) "gseq differs" false
    (Logsys.Record.equal a { a with gseq = 6 });
  (* Decoded records carry [true_time = nan]; equal must treat two nan
     times as equal, matching polymorphic compare. *)
  let n1 = { a with true_time = Float.nan } in
  let n2 = { a with true_time = Float.nan } in
  Alcotest.(check bool) "nan time equal" true (Logsys.Record.equal n1 n2);
  Alcotest.(check bool) "nan vs finite" false (Logsys.Record.equal a n1);
  Alcotest.(check bool) "agrees with compare" true
    (Logsys.Record.equal n1 n2 = (compare n1 n2 = 0))

let record_time_order () =
  let a = record 0 Gen ~origin:0 ~seq:0 ~time:1. ~gseq:0 in
  let b = record 0 Gen ~origin:0 ~seq:1 ~time:2. ~gseq:1 in
  let c = record 0 Gen ~origin:0 ~seq:2 ~time:2. ~gseq:2 in
  Alcotest.(check bool) "by time" true (Logsys.Record.compare_by_time a b < 0);
  Alcotest.(check bool) "tie by gseq" true (Logsys.Record.compare_by_time b c < 0)

(* -- Cause ------------------------------------------------------------------ *)

let cause_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "name roundtrip" true
        (Logsys.Cause.of_name (Logsys.Cause.name c) = Some c))
    Logsys.Cause.all;
  Alcotest.(check bool) "unknown name" true (Logsys.Cause.of_name "nope" = None)

let cause_is_loss () =
  Alcotest.(check bool) "delivered not loss" false
    (Logsys.Cause.is_loss Logsys.Cause.Delivered);
  Alcotest.(check bool) "unknown not loss" false
    (Logsys.Cause.is_loss Logsys.Cause.Unknown);
  List.iter
    (fun c -> Alcotest.(check bool) "loss" true (Logsys.Cause.is_loss c))
    Logsys.Cause.loss_causes

(* -- Logger ------------------------------------------------------------------ *)

let logger_per_node_order () =
  let l = Logsys.Logger.create ~n_nodes:3 in
  Logsys.Logger.log l (record 1 Gen ~origin:1 ~seq:0 ~time:0. ~gseq:0);
  Logsys.Logger.log l (record 1 (Trans { to_ = 2 }) ~origin:1 ~seq:0 ~time:1. ~gseq:1);
  Logsys.Logger.log l (record 2 (Recv { from = 1 }) ~origin:1 ~seq:0 ~time:2. ~gseq:2);
  let n1 = Logsys.Logger.node_log l 1 in
  Alcotest.(check int) "two records" 2 (Array.length n1);
  Alcotest.(check string) "write order" "gen"
    (Logsys.Record.kind_name n1.(0).kind);
  Alcotest.(check int) "total" 3 (Logsys.Logger.total l);
  let gt = Logsys.Logger.ground_truth l in
  Alcotest.(check (list int)) "chronological" [ 0; 1; 2 ]
    (List.map (fun (r : Logsys.Record.t) -> r.gseq) gt)

let logger_bad_node () =
  let l = Logsys.Logger.create ~n_nodes:2 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Logger.log: node id out of range") (fun () ->
      Logsys.Logger.log l (record 5 Gen ~origin:0 ~seq:0 ~time:0. ~gseq:0))

(* -- Loss model --------------------------------------------------------------- *)

let sample_log n =
  Array.init n (fun i ->
      record 0 Gen ~origin:0 ~seq:i ~time:(float_of_int i) ~gseq:i)

let loss_none_is_identity () =
  let rng = Prelude.Rng.create ~seed:1L in
  let log = sample_log 50 in
  let out = Logsys.Loss_model.apply Logsys.Loss_model.none rng log in
  Alcotest.(check int) "same length" 50 (Array.length out)

let loss_uniform_drops () =
  let rng = Prelude.Rng.create ~seed:1L in
  let log = sample_log 2000 in
  let out = Logsys.Loss_model.apply (Logsys.Loss_model.uniform 0.3) rng log in
  let kept = Array.length out in
  Alcotest.(check bool) "≈70% kept" true (kept > 1300 && kept < 1500)

let loss_preserves_order_subset () =
  let rng = Prelude.Rng.create ~seed:2L in
  let log = sample_log 500 in
  let out = Logsys.Loss_model.apply Logsys.Loss_model.default rng log in
  (* Surviving gseq values are strictly increasing (order preserved, pure
     subset). *)
  let ok = ref true in
  let last = ref (-1) in
  Array.iter
    (fun (r : Logsys.Record.t) ->
      if r.gseq <= !last then ok := false;
      last := r.gseq)
    out;
  Alcotest.(check bool) "subsequence" true !ok

let loss_node_wipe () =
  let rng = Prelude.Rng.create ~seed:3L in
  let config = { Logsys.Loss_model.none with node_wipe = 1.0 } in
  let out = Logsys.Loss_model.apply config rng (sample_log 10) in
  Alcotest.(check int) "all gone" 0 (Array.length out)

let loss_ring_capacity () =
  let rng = Prelude.Rng.create ~seed:4L in
  let config = { Logsys.Loss_model.none with ring_capacity = Some 3 } in
  let out = Logsys.Loss_model.apply config rng (sample_log 10) in
  Alcotest.(check int) "last 3 kept" 3 (Array.length out);
  Alcotest.(check int) "newest survive" 7 out.(0).gseq

let loss_chunk () =
  let rng = Prelude.Rng.create ~seed:5L in
  let config =
    { Logsys.Loss_model.none with chunk_size = 10; chunk_loss = 1.0 }
  in
  let out = Logsys.Loss_model.apply config rng (sample_log 35) in
  Alcotest.(check int) "all chunks lost" 0 (Array.length out)

let loss_validate () =
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Loss_model: write_loss out of [0,1]") (fun () ->
      Logsys.Loss_model.validate
        { Logsys.Loss_model.none with write_loss = 1.5 });
  Alcotest.check_raises "bad chunk"
    (Invalid_argument "Loss_model: chunk_size <= 0") (fun () ->
      Logsys.Loss_model.validate { Logsys.Loss_model.none with chunk_size = 0 })

let loss_subset_property =
  QCheck.Test.make ~name:"loss model output is an ordered subset" ~count:100
    QCheck.(pair (int_range 0 200) int64)
    (fun (n, seed) ->
      let rng = Prelude.Rng.create ~seed in
      let log = sample_log n in
      let out = Logsys.Loss_model.apply Logsys.Loss_model.default rng log in
      let last = ref (-1) in
      Array.for_all
        (fun (r : Logsys.Record.t) ->
          let ok = r.gseq > !last in
          last := r.gseq;
          ok)
        out)

(* -- Collected ------------------------------------------------------------- *)

let make_collected () =
  let l = Logsys.Logger.create ~n_nodes:3 in
  Logsys.Logger.log l (record 1 Gen ~origin:1 ~seq:0 ~time:0. ~gseq:0);
  Logsys.Logger.log l (record 1 (Trans { to_ = 2 }) ~origin:1 ~seq:0 ~time:1. ~gseq:1);
  Logsys.Logger.log l (record 2 (Recv { from = 1 }) ~origin:1 ~seq:0 ~time:2. ~gseq:2);
  Logsys.Logger.log l (record 1 Gen ~origin:1 ~seq:1 ~time:3. ~gseq:3);
  Logsys.Collected.of_logger l

let collected_packet_keys () =
  let c = make_collected () in
  Alcotest.(check (list (pair int int))) "keys" [ (1, 0); (1, 1) ]
    (Logsys.Collected.packet_keys c);
  Alcotest.(check int) "total" 4 (Logsys.Collected.total c)

let collected_events_of_packet () =
  let c = make_collected () in
  let groups = Logsys.Collected.events_of_packet c ~origin:1 ~seq:0 in
  Alcotest.(check (list int)) "nodes with records" [ 1; 2 ]
    (List.map fst groups);
  let node1 = List.assoc 1 groups in
  Alcotest.(check (list string)) "order preserved" [ "gen"; "trans" ]
    (List.map (fun (r : Logsys.Record.t) -> Logsys.Record.kind_name r.kind) node1);
  Alcotest.(check (list (pair int int))) "missing packet" []
    (List.map (fun (n, _) -> (n, 0))
       (Logsys.Collected.events_of_packet c ~origin:9 ~seq:9))

let collected_merges_preserve_local_order () =
  let c = make_collected () in
  let check_merge name merged =
    (* Per-node gseq order must be preserved in any merge. *)
    let last = Hashtbl.create 4 in
    List.iter
      (fun (r : Logsys.Record.t) ->
        let prev = Option.value ~default:(-1) (Hashtbl.find_opt last r.node) in
        Alcotest.(check bool) (name ^ " local order") true (r.gseq > prev);
        Hashtbl.replace last r.node r.gseq)
      merged;
    Alcotest.(check int) (name ^ " complete") 4 (List.length merged)
  in
  check_merge "concat" (Logsys.Collected.merged_concat c);
  check_merge "round-robin" (Logsys.Collected.merged_round_robin c)

(* -- Truth ------------------------------------------------------------------- *)

let truth_basics () =
  let t = Logsys.Truth.create () in
  Logsys.Truth.record t ~origin:1 ~seq:0
    {
      cause = Logsys.Cause.Delivered;
      loss_node = None;
      path = [ 1; 2; 0 ];
      generated_at = 0.;
      resolved_at = 5.;
    };
  Logsys.Truth.record t ~origin:1 ~seq:1
    {
      cause = Logsys.Cause.Timeout_loss;
      loss_node = Some 2;
      path = [ 1; 2 ];
      generated_at = 1.;
      resolved_at = 9.;
    };
  Alcotest.(check int) "count" 2 (Logsys.Truth.count t);
  Alcotest.(check int) "losses" 1 (Logsys.Truth.loss_count t);
  Alcotest.(check bool) "find" true
    (Logsys.Truth.find t ~origin:1 ~seq:0 <> None);
  Alcotest.(check bool) "missing" true
    (Logsys.Truth.find t ~origin:9 ~seq:9 = None);
  let counts = Logsys.Truth.cause_counts t in
  Alcotest.(check (option int)) "delivered count" (Some 1)
    (List.assoc_opt Logsys.Cause.Delivered counts);
  Alcotest.(check (option int)) "timeout count" (Some 1)
    (List.assoc_opt Logsys.Cause.Timeout_loss counts);
  Alcotest.(check (option int)) "zero included" (Some 0)
    (List.assoc_opt Logsys.Cause.Overflow_loss counts)

let () =
  Alcotest.run "logsys"
    [
      ( "record",
        [
          Alcotest.test_case "accessors" `Quick record_accessors;
          Alcotest.test_case "to_string" `Quick record_to_string;
          Alcotest.test_case "equal" `Quick record_equal;
          Alcotest.test_case "time order" `Quick record_time_order;
        ] );
      ( "cause",
        [
          Alcotest.test_case "roundtrip" `Quick cause_roundtrip;
          Alcotest.test_case "is_loss" `Quick cause_is_loss;
        ] );
      ( "logger",
        [
          Alcotest.test_case "per-node order" `Quick logger_per_node_order;
          Alcotest.test_case "bad node" `Quick logger_bad_node;
        ] );
      ( "loss_model",
        [
          Alcotest.test_case "none is identity" `Quick loss_none_is_identity;
          Alcotest.test_case "uniform drops" `Quick loss_uniform_drops;
          Alcotest.test_case "ordered subset" `Quick loss_preserves_order_subset;
          Alcotest.test_case "node wipe" `Quick loss_node_wipe;
          Alcotest.test_case "ring capacity" `Quick loss_ring_capacity;
          Alcotest.test_case "chunk loss" `Quick loss_chunk;
          Alcotest.test_case "validate" `Quick loss_validate;
          QCheck_alcotest.to_alcotest loss_subset_property;
        ] );
      ( "collected",
        [
          Alcotest.test_case "packet keys" `Quick collected_packet_keys;
          Alcotest.test_case "events of packet" `Quick collected_events_of_packet;
          Alcotest.test_case "merge order" `Quick
            collected_merges_preserve_local_order;
        ] );
      ("truth", [ Alcotest.test_case "basics" `Quick truth_basics ]);
    ]

(* Tests for the Refill_obs observability substrate: metric semantics,
   span nesting, Chrome-trace well-formedness, and the zero-cost null
   sink. *)

module Obs = Refill_obs
module M = Obs.Metrics
module J = Obs.Json

(* -- Counters --------------------------------------------------------------- *)

let counter_basics () =
  let reg = M.create_registry () in
  let c = M.Counter.v ~registry:reg "requests_total" in
  Alcotest.(check int) "starts at zero" 0 (M.Counter.value c);
  M.Counter.inc c;
  M.Counter.inc ~by:41 c;
  Alcotest.(check int) "accumulates" 42 (M.Counter.value c);
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics.Counter.inc: negative increment") (fun () ->
      M.Counter.inc ~by:(-1) c)

let counter_interned () =
  let reg = M.create_registry () in
  let a = M.Counter.v ~registry:reg "hits_total" in
  M.Counter.inc a;
  let b = M.Counter.v ~registry:reg "hits_total" in
  M.Counter.inc b;
  Alcotest.(check int) "same instrument" 2 (M.Counter.value a);
  (* Distinct labels are distinct series. *)
  let l = M.Counter.v ~registry:reg "hits_total" ~labels:[ ("k", "v") ] in
  M.Counter.inc l;
  Alcotest.(check int) "label series separate" 2 (M.Counter.value a);
  Alcotest.(check int) "labelled value" 1 (M.Counter.value l)

let kind_conflict_rejected () =
  let reg = M.create_registry () in
  ignore (M.Counter.v ~registry:reg "x_total");
  match M.Gauge.v ~registry:reg "x_total" with
  | _ -> Alcotest.fail "kind conflict must raise"
  | exception Invalid_argument _ -> ()

let gauge_basics () =
  let reg = M.create_registry () in
  let g = M.Gauge.v ~registry:reg "depth" in
  M.Gauge.set g 3.5;
  M.Gauge.add g 1.5;
  Alcotest.(check (float 1e-9)) "set+add" 5.0 (M.Gauge.value g)

(* -- Histograms ------------------------------------------------------------- *)

let histogram_buckets () =
  let reg = M.create_registry () in
  let h =
    M.Histogram.v ~registry:reg "latency"
      ~buckets:[| 1.; 2.; 4.; 8. |]
  in
  List.iter (M.Histogram.observe h) [ 0.5; 1.0; 3.0; 100.0 ];
  Alcotest.(check int) "count" 4 (M.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 104.5 (M.Histogram.sum h);
  (* Cumulative counts: le=1 catches 0.5 and 1.0 (bounds inclusive), le=2
     adds nothing, le=4 adds 3.0, +Inf adds 100.0. *)
  Alcotest.(check (list (pair (float 0.) int)))
    "cumulative buckets"
    [ (1., 2); (2., 2); (4., 3); (8., 3); (infinity, 4) ]
    (M.Histogram.bucket_counts h)

let histogram_edges () =
  let reg = M.create_registry () in
  let h = M.Histogram.v ~registry:reg "edges" ~buckets:[| 0.; 1. |] in
  (* Zero and negative observations land in the first finite bucket
     (bounds are inclusive upper edges). *)
  M.Histogram.observe h 0.;
  M.Histogram.observe h (-3.);
  Alcotest.(check (list (pair (float 0.) int)))
    "zero and negative in le=0"
    [ (0., 2); (1., 2); (infinity, 2) ]
    (M.Histogram.bucket_counts h);
  Alcotest.(check (float 1e-9)) "sum keeps the raw values" (-3.)
    (M.Histogram.sum h);
  (* Exact boundary values are inclusive on every edge. *)
  let b = M.Histogram.v ~registry:reg "bounds" ~buckets:[| 1.; 2.; 4. |] in
  List.iter (M.Histogram.observe b) [ 1.; 2.; 4. ];
  Alcotest.(check (list (pair (float 0.) int)))
    "each bound catches its own value"
    [ (1., 1); (2., 2); (4., 3); (infinity, 3) ]
    (M.Histogram.bucket_counts b);
  (* observe_n in one call equals n observes. *)
  let n1 = M.Histogram.v ~registry:reg "n1" ~buckets:[| 10. |] in
  M.Histogram.observe_n n1 3. 4;
  Alcotest.(check int) "observe_n count" 4 (M.Histogram.count n1);
  Alcotest.(check (float 1e-9)) "observe_n sum" 12. (M.Histogram.sum n1)

let counter_add () =
  let reg = M.create_registry () in
  let c = M.Counter.v ~registry:reg "adds_total" in
  M.Counter.add c 5;
  M.Counter.add c 0;
  Alcotest.(check int) "add accumulates" 5 (M.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Metrics.Counter.add: negative increment") (fun () ->
      M.Counter.add c (-1))

let histogram_log_buckets () =
  let b = M.Histogram.log_buckets ~lo:1. ~hi:8. ~factor:2. in
  Alcotest.(check (array (float 1e-9))) "geometric" [| 1.; 2.; 4.; 8. |] b;
  let d = M.Histogram.default_buckets in
  Alcotest.(check bool) "default non-empty" true (Array.length d > 10);
  let monotone = ref true in
  for i = 1 to Array.length d - 1 do
    if d.(i) <= d.(i - 1) then monotone := false
  done;
  Alcotest.(check bool) "default strictly increasing" true !monotone

(* -- Dumps ------------------------------------------------------------------ *)

let populated_registry () =
  let reg = M.create_registry () in
  let c = M.Counter.v ~registry:reg "events_total" ~help:"All events." in
  M.Counter.inc ~by:7 c;
  let g = M.Gauge.v ~registry:reg "clock_seconds" in
  M.Gauge.set g 1.25;
  let h = M.Histogram.v ~registry:reg "lat" ~buckets:[| 1.; 10. |] in
  M.Histogram.observe h 5.;
  reg

(* Naive substring search; good enough for test assertions. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let prometheus_dump () =
  let reg = populated_registry () in
  let text = M.dump_prometheus ~registry:reg () in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "dump contains %S" needle)
        true (contains text needle))
    [
      "# TYPE events_total counter";
      "# HELP events_total All events.";
      "events_total 7";
      "clock_seconds 1.25";
      "lat_bucket{le=\"10\"} 1";
      "lat_bucket{le=\"+Inf\"} 1";
      "lat_count 1";
    ]

let json_dump_parses () =
  let reg = populated_registry () in
  let text = M.dump_json ~registry:reg () in
  match J.parse text with
  | Error e -> Alcotest.failf "metrics JSON did not parse: %s" e
  | Ok doc -> (
      match J.member "metrics" doc with
      | Some (J.Arr entries) ->
          Alcotest.(check int) "three metrics" 3 (List.length entries);
          List.iter
            (fun entry ->
              match (J.member "name" entry, J.member "type" entry) with
              | Some (J.Str _), Some (J.Str _) -> ()
              | _ -> Alcotest.fail "entry missing name/type")
            entries
      | _ -> Alcotest.fail "no metrics array")

let reset_zeroes () =
  let reg = populated_registry () in
  M.reset reg;
  let c = M.Counter.v ~registry:reg "events_total" in
  Alcotest.(check int) "counter reset" 0 (M.Counter.value c);
  let h = M.Histogram.v ~registry:reg "lat" in
  Alcotest.(check int) "histogram reset" 0 (M.Histogram.count h)

let reset_preserves_registrations () =
  let reg = populated_registry () in
  M.reset reg;
  (* The registrations survive: instruments re-resolve (same identity) and
     the dump still carries their metadata, just with zeroed samples. *)
  let text = M.dump_prometheus ~registry:reg () in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "post-reset dump contains %S" needle)
        true (contains text needle))
    [
      "# TYPE events_total counter";
      "# HELP events_total All events.";
      "events_total 0";
      "clock_seconds 0";
      "lat_count 0";
    ];
  let c = M.Counter.v ~registry:reg "events_total" in
  M.Counter.inc ~by:3 c;
  Alcotest.(check int) "instrument usable after reset" 3 (M.Counter.value c)

let prometheus_label_escaping () =
  let reg = M.create_registry () in
  let c =
    M.Counter.v ~registry:reg "weird_total"
      ~labels:[ ("path", "a\\b\"c\nd") ]
  in
  M.Counter.inc c;
  let text = M.dump_prometheus ~registry:reg () in
  Alcotest.(check bool) "backslash, quote, newline escaped" true
    (contains text "weird_total{path=\"a\\\\b\\\"c\\nd\"} 1");
  Alcotest.(check bool) "no raw newline inside a label value" true
    (not (contains text "c\nd"))

(* -- JSON parser ------------------------------------------------------------ *)

let json_roundtrip () =
  let doc =
    J.Obj
      [
        ("a", J.Num 1.5);
        ("b", J.Str "x\"y\n");
        ("c", J.Arr [ J.Bool true; J.Null; J.Num (-3.) ]);
        ("empty", J.Obj []);
      ]
  in
  match J.parse (J.to_string doc) with
  | Ok parsed -> Alcotest.(check bool) "roundtrip" true (parsed = doc)
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e

let json_rejects_garbage () =
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ]

(* -- Spans and sinks --------------------------------------------------------- *)

(* Install [s], run [f], restore the null sink. *)
let with_sink s f =
  Obs.Span.set_sink s;
  Fun.protect ~finally:(fun () -> Obs.Span.set_sink Obs.Sink.null) f

let span_nesting () =
  let sink = Obs.Sink.memory () in
  with_sink sink (fun () ->
      Alcotest.(check bool) "enabled" true (Obs.Span.enabled ());
      let result =
        Obs.Span.with_ ~name:"outer" (fun () ->
            Alcotest.(check int) "depth inside" 1 (Obs.Span.depth ());
            Obs.Span.with_ ~name:"inner" ~attrs:[ ("k", "v") ] (fun () -> 21)
            * 2)
      in
      Alcotest.(check int) "value returned" 42 result);
  match Obs.Sink.events sink with
  | [ inner; outer ] ->
      (* Spans are emitted at exit: innermost first. *)
      Alcotest.(check string) "inner first" "inner" inner.Obs.Sink.name;
      Alcotest.(check string) "outer second" "outer" outer.Obs.Sink.name;
      Alcotest.(check bool) "inner starts within outer" true
        (inner.ts_us >= outer.ts_us);
      Alcotest.(check bool) "inner ends within outer" true
        (inner.ts_us +. inner.dur_us <= outer.ts_us +. outer.dur_us +. 1e-6);
      Alcotest.(check (list (pair string string)))
        "attrs preserved"
        [ ("k", "v") ]
        inner.args
  | events -> Alcotest.failf "expected 2 events, got %d" (List.length events)

let span_survives_exception () =
  let sink = Obs.Sink.memory () in
  (match
     with_sink sink (fun () ->
         Obs.Span.with_ ~name:"boom" (fun () -> failwith "kaput"))
   with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  Alcotest.(check int) "span still emitted" 1
    (List.length (Obs.Sink.events sink));
  Alcotest.(check int) "depth unwound" 0 (Obs.Span.depth ())

let null_sink_adds_nothing () =
  (* The default sink is null: spans run the body exactly once and record
     nothing anywhere. *)
  Alcotest.(check bool) "disabled by default" false (Obs.Span.enabled ());
  let runs = ref 0 in
  let v = Obs.Span.with_ ~name:"invisible" (fun () -> incr runs; "ok") in
  Alcotest.(check string) "value passes through" "ok" v;
  Alcotest.(check int) "body ran once" 1 !runs;
  Alcotest.(check (list reject)) "null sink holds no events" []
    (Obs.Sink.events (Obs.Span.sink ()));
  Obs.Span.instant "also-invisible";
  Alcotest.(check (list reject)) "instants discarded too" []
    (Obs.Sink.events (Obs.Span.sink ()))

let swap_sink_returns_previous () =
  let mem = Obs.Sink.memory () in
  let prev = Obs.Span.swap_sink mem in
  Fun.protect
    ~finally:(fun () -> Obs.Span.set_sink Obs.Sink.null)
    (fun () ->
      Alcotest.(check bool) "default sink handed back" true
        (Obs.Sink.is_null prev);
      Alcotest.(check bool) "memory sink now active" true
        (Obs.Span.enabled ());
      Obs.Span.with_ ~name:"swapped" (fun () -> ());
      (* Swapping again returns the memory sink, events intact. *)
      let back = Obs.Span.swap_sink Obs.Sink.null in
      Alcotest.(check bool) "returned sink is the memory sink" true
        (back == mem);
      Alcotest.(check int) "its events survive the swap" 1
        (List.length (Obs.Sink.events back)))

let chrome_trace_wellformed () =
  let sink = Obs.Sink.memory () in
  with_sink sink (fun () ->
      Obs.Span.with_ ~name:"a" (fun () ->
          Obs.Span.with_ ~name:"b" (fun () -> ()));
      Obs.Span.instant "marker");
  let doc = Obs.Sink.trace_json (Obs.Sink.events sink) in
  match J.parse (J.to_string doc) with
  | Error e -> Alcotest.failf "trace JSON invalid: %s" e
  | Ok parsed -> (
      match J.member "traceEvents" parsed with
      | Some (J.Arr events) ->
          Alcotest.(check int) "three events" 3 (List.length events);
          List.iter
            (fun e ->
              (match J.member "ph" e with
              | Some (J.Str ("X" | "i")) -> ()
              | _ -> Alcotest.fail "bad ph");
              match (J.member "name" e, J.member "ts" e) with
              | Some (J.Str _), Some (J.Num _) -> ()
              | _ -> Alcotest.fail "missing name/ts")
            events
      | _ -> Alcotest.fail "no traceEvents array")

let file_sink_writes_trace () =
  let path = Filename.temp_file "refill_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Obs.Sink.file path in
      with_sink sink (fun () ->
          Obs.Span.with_ ~name:"outer" (fun () ->
              Obs.Span.with_ ~name:"inner" (fun () -> ())));
      Obs.Sink.close sink;
      Obs.Sink.close sink;  (* idempotent *)
      let ic = open_in path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      match J.parse text with
      | Error e -> Alcotest.failf "file trace invalid: %s" e
      | Ok doc -> (
          match J.member "traceEvents" doc with
          | Some (J.Arr events) ->
              Alcotest.(check int) "two spans on disk" 2 (List.length events)
          | _ -> Alcotest.fail "no traceEvents array"))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick counter_basics;
          Alcotest.test_case "counter interning" `Quick counter_interned;
          Alcotest.test_case "kind conflict" `Quick kind_conflict_rejected;
          Alcotest.test_case "gauge" `Quick gauge_basics;
          Alcotest.test_case "histogram buckets" `Quick histogram_buckets;
          Alcotest.test_case "histogram edges" `Quick histogram_edges;
          Alcotest.test_case "counter add" `Quick counter_add;
          Alcotest.test_case "log buckets" `Quick histogram_log_buckets;
          Alcotest.test_case "prometheus dump" `Quick prometheus_dump;
          Alcotest.test_case "label escaping" `Quick
            prometheus_label_escaping;
          Alcotest.test_case "json dump parses" `Quick json_dump_parses;
          Alcotest.test_case "reset" `Quick reset_zeroes;
          Alcotest.test_case "reset keeps registrations" `Quick
            reset_preserves_registrations;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick json_rejects_garbage;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick span_nesting;
          Alcotest.test_case "exception safety" `Quick span_survives_exception;
          Alcotest.test_case "null sink is silent" `Quick null_sink_adds_nothing;
          Alcotest.test_case "swap_sink returns previous" `Quick
            swap_sink_returns_previous;
          Alcotest.test_case "chrome trace wellformed" `Quick
            chrome_trace_wellformed;
          Alcotest.test_case "file sink" `Quick file_sink_writes_trace;
        ] );
    ]

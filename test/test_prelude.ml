(* Unit and property tests for the prelude substrate. *)

open Prelude

let rng_deterministic () =
  let a = Rng.create ~seed:123L and b = Rng.create ~seed:123L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let rng_seeds_differ () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let rng_copy_independent () =
  let a = Rng.create ~seed:9L in
  ignore (Rng.int64 a : int64);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a)
    (Rng.int64 b);
  (* Now they diverge independently but deterministically. *)
  let x = Rng.int64 a in
  let y = Rng.int64 b in
  Alcotest.(check int64) "same continuation" x y

let rng_split_independent () =
  let a = Rng.create ~seed:77L in
  let child = Rng.split a in
  let xs = List.init 32 (fun _ -> Rng.int64 a) in
  let ys = List.init 32 (fun _ -> Rng.int64 child) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let rng_int_bounds () =
  let r = Rng.create ~seed:5L in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0 : int))

let rng_unit_float_range () =
  let r = Rng.create ~seed:6L in
  for _ = 1 to 1000 do
    let v = Rng.unit_float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0. && v < 1.)
  done

let rng_bernoulli_extremes () =
  let r = Rng.create ~seed:8L in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli r ~p:0.);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli r ~p:1.);
  Alcotest.(check bool) "p<0 never" false (Rng.bernoulli r ~p:(-0.5));
  Alcotest.(check bool) "p>1 always" true (Rng.bernoulli r ~p:1.5)

let rng_bernoulli_mean () =
  let r = Rng.create ~seed:10L in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli r ~p:0.3 then incr hits
  done;
  let mean = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "mean near 0.3" true (abs_float (mean -. 0.3) < 0.02)

let rng_exponential_mean () =
  let r = Rng.create ~seed:11L in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:5.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 5" true (abs_float (mean -. 5.) < 0.3)

let rng_gaussian_moments () =
  let r = Rng.create ~seed:12L in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian r ~mu:2. ~sigma:3.) in
  Alcotest.(check bool) "mu" true (abs_float (Stats.mean samples -. 2.) < 0.1);
  Alcotest.(check bool) "sigma" true
    (abs_float (Stats.stddev samples -. 3.) < 0.1)

let rng_shuffle_permutation () =
  let r = Rng.create ~seed:13L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let rng_sample_without_replacement () =
  let r = Rng.create ~seed:14L in
  let s = Rng.sample_without_replacement r ~k:10 ~n:20 in
  Alcotest.(check int) "k elements" 10 (List.length s);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s));
  List.iter
    (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 20))
    s;
  Alcotest.(check bool) "sorted" true (List.sort compare s = s)

(* -- Heap ----------------------------------------------------------------- *)

let heap_ordering () =
  let h = Heap.create () in
  List.iter
    (fun p -> Heap.push h ~priority:p p)
    [ 5.; 1.; 3.; 2.; 4.; 0.5; 10. ];
  let drained = List.map fst (Heap.to_sorted_list h) in
  Alcotest.(check (list (float 1e-9)))
    "sorted" [ 0.5; 1.; 2.; 3.; 4.; 5.; 10. ] drained

let heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h ~priority:1. "a";
  Heap.push h ~priority:1. "b";
  Heap.push h ~priority:1. "c";
  let pop () = snd (Option.get (Heap.pop h)) in
  Alcotest.(check string) "first in first out" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ())

let heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let heap_peek_does_not_remove () =
  let h = Heap.create () in
  Heap.push h ~priority:2. 2;
  Heap.push h ~priority:1. 1;
  Alcotest.(check bool) "peek min" true (Heap.peek h = Some (1., 1));
  Alcotest.(check int) "length unchanged" 2 (Heap.length h)

let heap_push_tie_order () =
  (* push_tie breaks equal priorities by the explicit tie key, not by
     insertion order — "c" goes in before "b" but pops after it. *)
  let h = Heap.create () in
  Heap.push_tie h ~priority:1. ~tie:5 "c";
  Heap.push_tie h ~priority:1. ~tie:2 "b";
  Heap.push_tie h ~priority:0.5 ~tie:9 "a";
  Heap.push_tie h ~priority:1. ~tie:7 "d";
  let drained = List.map snd (Heap.to_sorted_list h) in
  Alcotest.(check (list string)) "lexicographic (priority, tie)"
    [ "a"; "b"; "c"; "d" ] drained

let heap_to_sorted_preserves () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h ~priority:(float_of_int p) p) [ 3; 1; 2 ];
  ignore (Heap.to_sorted_list h);
  Alcotest.(check int) "heap intact" 3 (Heap.length h)

let heap_property_sorted =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.))
    (fun priorities ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h ~priority:p p) priorities;
      let drained = List.map fst (Heap.to_sorted_list h) in
      drained = List.stable_sort Float.compare priorities)

(* -- Stats ---------------------------------------------------------------- *)

let stats_mean_var () =
  let a = [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean a);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Stats.variance a);
  Alcotest.(check (float 1e-9)) "empty mean" 0. (Stats.mean [||])

let stats_percentiles () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.percentile a ~p:0.);
  Alcotest.(check (float 1e-9)) "p50" 3. (Stats.percentile a ~p:50.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Stats.percentile a ~p:100.);
  Alcotest.(check (float 1e-9)) "p25 interpolated" 2. (Stats.percentile a ~p:25.)

let stats_histogram () =
  let h = Stats.histogram [| 0.; 1.; 2.; 3.; 4. |] ~bins:5 in
  Alcotest.(check (array int)) "uniform" [| 1; 1; 1; 1; 1 |] h.bins;
  let h2 = Stats.histogram [| 1.; 1.; 1. |] ~bins:3 in
  Alcotest.(check int) "degenerate data lands in bin 0" 3 h2.bins.(0)

let stats_summary () =
  let s = Stats.summarize [| 5.; 1.; 3. |] in
  Alcotest.(check int) "n" 3 s.n;
  Alcotest.(check (float 1e-9)) "min" 1. s.min;
  Alcotest.(check (float 1e-9)) "max" 5. s.max;
  Alcotest.(check (float 1e-9)) "median" 3. s.p50

let stats_ratio () =
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (Stats.ratio 1 2);
  Alcotest.(check (float 1e-9)) "zero denominator" 0. (Stats.ratio 1 0)

let percentile_property =
  QCheck.Test.make ~name:"percentile within min..max" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 50) (float_bound_exclusive 100.))
        (float_bound_inclusive 100.))
    (fun (l, p) ->
      let a = Array.of_list l in
      let v = Stats.percentile a ~p in
      let lo, hi = Stats.min_max a in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* -- Text table / charts --------------------------------------------------- *)

let table_alignment () =
  let s =
    Text_table.render ~header:[ "a"; "bb" ] [ [ "xxx"; "y" ]; [ "z" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "has header + rule + 2 rows" true
    (List.length (List.filter (fun l -> l <> "") lines) = 4)

let chart_smoke () =
  let s =
    Ascii_chart.scatter ~title:"t"
      [ { label = "a"; marker = '*'; points = [ (0., 0.); (1., 1.) ] } ]
  in
  Alcotest.(check bool) "contains marker" true (String.contains s '*');
  let b = Ascii_chart.bar ~title:"b" [ ("x", 1.); ("y", 2.) ] in
  Alcotest.(check bool) "contains hash" true (String.contains b '#');
  let sb =
    Ascii_chart.stacked_bars ~title:"s" ~series_labels:[ "u"; "v" ]
      [ ("r", [ 0.5; 0.5 ]) ]
  in
  Alcotest.(check bool) "nonempty" true (String.length sb > 0)

let sparkline_bounds () =
  Alcotest.(check string) "empty" "" (Ascii_chart.sparkline [||]);
  let s = Ascii_chart.sparkline [| 0.; 1. |] in
  Alcotest.(check int) "one char per sample" 2 (String.length s)

let () =
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick rng_seeds_differ;
          Alcotest.test_case "copy" `Quick rng_copy_independent;
          Alcotest.test_case "split" `Quick rng_split_independent;
          Alcotest.test_case "int bounds" `Quick rng_int_bounds;
          Alcotest.test_case "unit float range" `Quick rng_unit_float_range;
          Alcotest.test_case "bernoulli extremes" `Quick rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli mean" `Quick rng_bernoulli_mean;
          Alcotest.test_case "exponential mean" `Quick rng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick rng_gaussian_moments;
          Alcotest.test_case "shuffle permutation" `Quick
            rng_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick
            rng_sample_without_replacement;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick heap_ordering;
          Alcotest.test_case "fifo ties" `Quick heap_fifo_ties;
          Alcotest.test_case "push_tie ties" `Quick heap_push_tie_order;
          Alcotest.test_case "empty" `Quick heap_empty;
          Alcotest.test_case "peek" `Quick heap_peek_does_not_remove;
          Alcotest.test_case "to_sorted preserves" `Quick
            heap_to_sorted_preserves;
          QCheck_alcotest.to_alcotest heap_property_sorted;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/var" `Quick stats_mean_var;
          Alcotest.test_case "percentiles" `Quick stats_percentiles;
          Alcotest.test_case "histogram" `Quick stats_histogram;
          Alcotest.test_case "summary" `Quick stats_summary;
          Alcotest.test_case "ratio" `Quick stats_ratio;
          QCheck_alcotest.to_alcotest percentile_property;
        ] );
      ( "text",
        [
          Alcotest.test_case "table alignment" `Quick table_alignment;
          Alcotest.test_case "charts" `Quick chart_smoke;
          Alcotest.test_case "sparkline" `Quick sparkline_bounds;
        ] );
    ]

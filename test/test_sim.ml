(* Tests for the discrete-event simulation engine. *)

let callbacks_run_in_time_order () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  let record tag = fun _ -> order := tag :: !order in
  ignore (Sim.Engine.schedule e ~delay:3. (record "c"));
  ignore (Sim.Engine.schedule e ~delay:1. (record "a"));
  ignore (Sim.Engine.schedule e ~delay:2. (record "b"));
  Sim.Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !order)

let fifo_among_equal_times () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  let record tag = fun _ -> order := tag :: !order in
  ignore (Sim.Engine.schedule e ~delay:1. (record "first"));
  ignore (Sim.Engine.schedule e ~delay:1. (record "second"));
  Sim.Engine.run e;
  Alcotest.(check (list string)) "fifo" [ "first"; "second" ] (List.rev !order)

let clock_advances () =
  let e = Sim.Engine.create () in
  let seen = ref [] in
  ignore (Sim.Engine.schedule e ~delay:5. (fun e -> seen := Sim.Engine.now e :: !seen));
  ignore (Sim.Engine.schedule e ~delay:2. (fun e -> seen := Sim.Engine.now e :: !seen));
  Sim.Engine.run e;
  Alcotest.(check (list (float 1e-9))) "times" [ 2.; 5. ] (List.rev !seen);
  Alcotest.(check (float 1e-9)) "final clock" 5. (Sim.Engine.now e)

let negative_delay_clamped () =
  let e = Sim.Engine.create () in
  let ran = ref false in
  ignore (Sim.Engine.schedule e ~delay:(-4.) (fun _ -> ran := true));
  Sim.Engine.run e;
  Alcotest.(check bool) "ran at t=0" true !ran;
  Alcotest.(check (float 1e-9)) "clock 0" 0. (Sim.Engine.now e)

let cancel_prevents_run () =
  let e = Sim.Engine.create () in
  let ran = ref false in
  let h = Sim.Engine.schedule e ~delay:1. (fun _ -> ran := true) in
  Alcotest.(check bool) "pending" true (Sim.Engine.is_pending h);
  Sim.Engine.cancel h;
  Alcotest.(check bool) "not pending" false (Sim.Engine.is_pending h);
  Sim.Engine.run e;
  Alcotest.(check bool) "cancelled" false !ran

let nested_scheduling () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let rec tick engine =
    incr count;
    if !count < 5 then ignore (Sim.Engine.schedule engine ~delay:1. tick)
  in
  ignore (Sim.Engine.schedule e ~delay:1. tick);
  Sim.Engine.run e;
  Alcotest.(check int) "5 ticks" 5 !count;
  Alcotest.(check (float 1e-9)) "clock at 5" 5. (Sim.Engine.now e)

let run_until_stops_at_horizon () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let rec tick engine =
    incr count;
    ignore (Sim.Engine.schedule engine ~delay:1. tick)
  in
  ignore (Sim.Engine.schedule e ~delay:1. tick);
  Sim.Engine.run ~until:10.5 e;
  Alcotest.(check int) "10 ticks" 10 !count;
  Alcotest.(check (float 1e-9)) "clock at horizon" 10.5 (Sim.Engine.now e);
  (* Continue running: the pending tick resumes. *)
  Sim.Engine.run ~until:12. e;
  Alcotest.(check int) "12 ticks" 12 !count

let run_until_drained_clock_at_horizon () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:1. (fun _ -> ()));
  Sim.Engine.run ~until:100. e;
  Alcotest.(check (float 1e-9)) "clock jumps to horizon" 100.
    (Sim.Engine.now e)

let run_for_relative () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:1. (fun _ -> ()));
  Sim.Engine.run_for e ~duration:2.;
  Alcotest.(check (float 1e-9)) "now 2" 2. (Sim.Engine.now e);
  Sim.Engine.run_for e ~duration:3.;
  Alcotest.(check (float 1e-9)) "now 5" 5. (Sim.Engine.now e)

let schedule_at_past_clamped () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:5. (fun _ -> ()));
  Sim.Engine.run e;
  let time_seen = ref 0. in
  ignore
    (Sim.Engine.schedule_at e ~time:1. (fun e -> time_seen := Sim.Engine.now e));
  Sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "clamped to now" 5. !time_seen

let step_one_at_a_time () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  ignore (Sim.Engine.schedule e ~delay:1. (fun _ -> incr count));
  ignore (Sim.Engine.schedule e ~delay:2. (fun _ -> incr count));
  Alcotest.(check bool) "step 1" true (Sim.Engine.step e);
  Alcotest.(check int) "one ran" 1 !count;
  Alcotest.(check bool) "step 2" true (Sim.Engine.step e);
  Alcotest.(check bool) "exhausted" false (Sim.Engine.step e)

let pending_count_tracks () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:1. (fun _ -> ()));
  ignore (Sim.Engine.schedule e ~delay:2. (fun _ -> ()));
  Alcotest.(check int) "two pending" 2 (Sim.Engine.pending_count e);
  Sim.Engine.run e;
  Alcotest.(check int) "drained" 0 (Sim.Engine.pending_count e)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick callbacks_run_in_time_order;
          Alcotest.test_case "fifo ties" `Quick fifo_among_equal_times;
          Alcotest.test_case "clock advances" `Quick clock_advances;
          Alcotest.test_case "negative delay" `Quick negative_delay_clamped;
          Alcotest.test_case "cancel" `Quick cancel_prevents_run;
          Alcotest.test_case "nested scheduling" `Quick nested_scheduling;
          Alcotest.test_case "run until horizon" `Quick
            run_until_stops_at_horizon;
          Alcotest.test_case "drained clock" `Quick
            run_until_drained_clock_at_horizon;
          Alcotest.test_case "run_for" `Quick run_for_relative;
          Alcotest.test_case "schedule_at past" `Quick schedule_at_past_clamped;
          Alcotest.test_case "step" `Quick step_one_at_a_time;
          Alcotest.test_case "pending count" `Quick pending_count_tracks;
        ] );
    ]

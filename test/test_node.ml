(* Tests for the node OS model and the composed network simulator. *)

(* -- Server ------------------------------------------------------------------ *)

let server_windows () =
  let s = Node.Server.create ~outages:[ (10., 5.); (30., 10.) ] in
  Alcotest.(check bool) "up before" true (Node.Server.is_up s 5.);
  Alcotest.(check bool) "down at start" false (Node.Server.is_up s 10.);
  Alcotest.(check bool) "down inside" false (Node.Server.is_up s 14.9);
  Alcotest.(check bool) "up at end (half open)" true (Node.Server.is_up s 15.);
  Alcotest.(check bool) "down second window" false (Node.Server.is_up s 35.);
  Alcotest.(check bool) "always up" true (Node.Server.is_up Node.Server.always_up 0.)

let server_downtime () =
  let s = Node.Server.create ~outages:[ (10., 5.); (12., 6.) ] in
  (* Overlapping windows [10,15) and [12,18) merge to [10,18). *)
  Alcotest.(check (float 1e-9)) "merged downtime" 8.
    (Node.Server.downtime s ~until:100.);
  Alcotest.(check (float 1e-9)) "clipped" 4. (Node.Server.downtime s ~until:14.)

let server_invalid () =
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Server.create: negative outage duration") (fun () ->
      ignore (Node.Server.create ~outages:[ (0., -1.) ]))

(* -- Serial link --------------------------------------------------------------- *)

let serial_stable_never_drops () =
  let rng = Prelude.Rng.create ~seed:1L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "pushed" true
      (Node.Serial_link.sample Node.Serial_link.stable rng ~now:0.
      = Node.Serial_link.Pushed)
  done

let serial_step_function () =
  let s =
    Node.Serial_link.unstable_until ~fix_time:100. ~bad_rate:1.0 ~good_rate:0.
      ~prelog_fraction:0.
  in
  let rng = Prelude.Rng.create ~seed:2L in
  Alcotest.(check bool) "drops before fix" true
    (Node.Serial_link.sample s rng ~now:50. = Node.Serial_link.Dropped_after_log);
  Alcotest.(check bool) "clean after fix" true
    (Node.Serial_link.sample s rng ~now:150. = Node.Serial_link.Pushed);
  Alcotest.(check (float 1e-9)) "rate accessor" 1.0
    (Node.Serial_link.drop_probability s 0.)

let serial_prelog_split () =
  let s =
    Node.Serial_link.create ~drop_probability:(fun _ -> 1.0)
      ~prelog_fraction:1.0
  in
  let rng = Prelude.Rng.create ~seed:3L in
  Alcotest.(check bool) "always prelog" true
    (Node.Serial_link.sample s rng ~now:0. = Node.Serial_link.Dropped_before_log)

(* -- Upstack --------------------------------------------------------------------- *)

let upstack_reliable () =
  let rng = Prelude.Rng.create ~seed:4L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "survives" true
      (Node.Upstack.sample Node.Upstack.reliable rng = Node.Upstack.Survive)
  done

let upstack_split () =
  let u = Node.Upstack.create ~drop_probability:1.0 ~prelog_fraction:0.0 in
  let rng = Prelude.Rng.create ~seed:5L in
  Alcotest.(check bool) "postlog death" true
    (Node.Upstack.sample u rng = Node.Upstack.Drop_after_log);
  let u2 = Node.Upstack.create ~drop_probability:1.0 ~prelog_fraction:1.0 in
  Alcotest.(check bool) "prelog death" true
    (Node.Upstack.sample u2 rng = Node.Upstack.Drop_before_log)

let upstack_invalid () =
  Alcotest.check_raises "bad drop"
    (Invalid_argument "Upstack.create: drop_probability") (fun () ->
      ignore (Node.Upstack.create ~drop_probability:2. ~prelog_fraction:0.))

(* -- Network simulator -------------------------------------------------------- *)

let line_topology n spacing range =
  Net.Topology.create
    ~positions:(Array.init n (fun i -> (float_of_int i *. spacing, 0.)))
    ~range

let run_simple ?(config = Node.Network.default_config) ?(warmup = 300.)
    ?(duration = 600.) topo =
  let net = Node.Network.create config topo ~sink:0 in
  Node.Network.start net ~warmup ~duration;
  net

let network_delivers_on_good_links () =
  let topo = line_topology 4 5. 8. in
  let net = run_simple topo in
  Alcotest.(check bool) "routing converged" true
    (Node.Network.routing_converged net);
  let truth = Node.Network.truth net in
  let counts = Logsys.Truth.cause_counts truth in
  let delivered =
    Option.value ~default:0 (List.assoc_opt Logsys.Cause.Delivered counts)
  in
  let total = Logsys.Truth.count truth in
  Alcotest.(check bool) "packets flowed" true (total > 10);
  Alcotest.(check bool) "almost all delivered" true
    (float_of_int delivered /. float_of_int total > 0.95)

let network_every_packet_has_fate () =
  let topo = line_topology 4 5. 8. in
  let net = run_simple topo in
  Alcotest.(check int) "one fate per generated packet"
    (Node.Network.packets_generated net)
    (Logsys.Truth.count (Node.Network.truth net))

let network_tree_points_to_sink () =
  let topo = line_topology 5 5. 8. in
  let net = run_simple topo in
  (* On a line with short range, each node's parent must be its predecessor. *)
  for i = 1 to 4 do
    Alcotest.(check (option int))
      (Printf.sprintf "parent of %d" i)
      (Some (i - 1))
      (Node.Network.parent_of net i)
  done;
  Alcotest.(check bool) "cost grows with depth" true
    (Node.Network.path_etx_of net 4 > Node.Network.path_etx_of net 1)

let network_logs_match_protocol_order () =
  let topo = line_topology 3 5. 8. in
  let net = run_simple topo in
  (* Per packet per node, recv (or gen) must precede trans, which precedes
     ack, in the node's log. *)
  let logger = Node.Network.logger net in
  let check_node node =
    let per_packet = Hashtbl.create 32 in
    Array.iter
      (fun (r : Logsys.Record.t) ->
        let key = Logsys.Record.packet_key r in
        let l = Option.value ~default:[] (Hashtbl.find_opt per_packet key) in
        Hashtbl.replace per_packet key (Logsys.Record.kind_name r.kind :: l))
      (Logsys.Logger.node_log logger node);
    Hashtbl.iter
      (fun _ kinds_rev ->
        let kinds = List.rev kinds_rev in
        let index k =
          match List.find_index (String.equal k) kinds with
          | Some i -> i
          | None -> max_int
        in
        if index "trans" < max_int then begin
          Alcotest.(check bool) "hold before trans" true
            (index "gen" < index "trans" || index "recv" < index "trans");
          if index "ack" < max_int then
            Alcotest.(check bool) "trans before ack" true
              (index "trans" < index "ack")
        end)
      per_packet
  in
  for node = 0 to 2 do
    check_node node
  done

let network_timeout_on_dead_link () =
  (* Two nodes out of radio range never deliver; sources report timeouts or
     nothing at all (no route). *)
  let topo = line_topology 2 5. 8. in
  let config =
    {
      Node.Network.default_config with
      mac = { Net.Mac.default_config with max_retx = 3; attempt_interval = 0.05 };
    }
  in
  let net = Node.Network.create config topo ~sink:0 in
  (* Degrade the link completely before starting. *)
  Net.Link_model.set_weather (Node.Network.link_model net) (fun _ -> 0.);
  Node.Network.start net ~warmup:100. ~duration:300.;
  let counts = Logsys.Truth.cause_counts (Node.Network.truth net) in
  Alcotest.(check (option int)) "nothing delivered" (Some 0)
    (List.assoc_opt Logsys.Cause.Delivered counts)

let network_server_outage_counted () =
  let topo = line_topology 3 5. 8. in
  let config =
    {
      Node.Network.default_config with
      (* Down for the whole data phase. *)
      server = Node.Server.create ~outages:[ (0., 10_000.) ];
    }
  in
  let net = run_simple ~config topo in
  let counts = Logsys.Truth.cause_counts (Node.Network.truth net) in
  let outage =
    Option.value ~default:0
      (List.assoc_opt Logsys.Cause.Server_outage_loss counts)
  in
  Alcotest.(check bool) "all sink-delivered packets hit the outage" true
    (outage > 10);
  Alcotest.(check (option int)) "none delivered" (Some 0)
    (List.assoc_opt Logsys.Cause.Delivered counts)

let network_serial_losses () =
  let topo = line_topology 3 5. 8. in
  let config =
    {
      Node.Network.default_config with
      serial =
        Node.Serial_link.create ~drop_probability:(fun _ -> 1.0)
          ~prelog_fraction:0.;
    }
  in
  let net = run_simple ~config topo in
  let counts = Logsys.Truth.cause_counts (Node.Network.truth net) in
  let received =
    Option.value ~default:0 (List.assoc_opt Logsys.Cause.Received_loss counts)
  in
  Alcotest.(check bool) "all losses are received@sink" true (received > 10);
  (* With prelog_fraction 0 the sink logs recv but never deliver. *)
  let truth = Node.Network.truth net in
  Logsys.Truth.iter truth (fun _ fate ->
      if Logsys.Cause.equal fate.cause Logsys.Cause.Received_loss then
        Alcotest.(check (option int)) "at sink" (Some 0) fate.loss_node)

let network_upstack_acked_losses () =
  let topo = line_topology 3 5. 8. in
  let config =
    {
      Node.Network.default_config with
      upstack = Node.Upstack.create ~drop_probability:1.0 ~prelog_fraction:1.0;
    }
  in
  let net = run_simple ~config topo in
  (* The up-stack model applies at forwarding nodes only: node 1 swallows
     every packet from node 2 silently (acked loss at node 1), while node
     1's own packets go straight to the sink and deliver. *)
  let truth = Node.Network.truth net in
  Logsys.Truth.iter truth (fun (origin, _) fate ->
      if origin = 2 then begin
        Alcotest.(check string) "node 2's packets acked-lost"
          (Logsys.Cause.name Logsys.Cause.Acked_loss)
          (Logsys.Cause.name fate.cause);
        Alcotest.(check (option int)) "at node 1" (Some 1) fate.loss_node
      end
      else
        Alcotest.(check string) "node 1's packets delivered"
          (Logsys.Cause.name Logsys.Cause.Delivered)
          (Logsys.Cause.name fate.cause))

let network_deterministic () =
  let run () =
    let topo = line_topology 4 5. 8. in
    let net = run_simple topo in
    ( Node.Network.packets_generated net,
      Logsys.Logger.total (Node.Network.logger net),
      Logsys.Truth.cause_counts (Node.Network.truth net) )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

let software_ack_retries_through_serial_faults () =
  (* A 50%-lossy serial link: hardware ACKs lose half the packets at the
     sink; software ACKs retry until the push succeeds. *)
  let run mode =
    let topo = line_topology 3 5. 8. in
    let config =
      {
        Node.Network.default_config with
        ack_mode = mode;
        serial =
          Node.Serial_link.create ~drop_probability:(fun _ -> 0.5)
            ~prelog_fraction:0.5;
      }
    in
    let net = run_simple ~config topo in
    let counts = Logsys.Truth.cause_counts (Node.Network.truth net) in
    let get c = Option.value ~default:0 (List.assoc_opt c counts) in
    ( Logsys.Truth.count (Node.Network.truth net),
      get Logsys.Cause.Delivered,
      get Logsys.Cause.Acked_loss + get Logsys.Cause.Received_loss )
  in
  let _, hw_delivered, hw_sink_losses = run Node.Network.Hardware in
  let sw_total, sw_delivered, sw_sink_losses = run Node.Network.Software in
  Alcotest.(check bool) "hardware loses at the sink" true (hw_sink_losses > 5);
  Alcotest.(check int) "software never loses at the sink" 0 sw_sink_losses;
  Alcotest.(check bool) "software delivers everything" true
    (sw_delivered = sw_total);
  Alcotest.(check bool) "software beats hardware" true
    (sw_delivered > hw_delivered)

let software_ack_upstack_black_hole_times_out () =
  (* A relay that swallows every packet silently: under software ACKs the
     sender sees no ACK and, after exhausting retries, reports a timeout —
     the loss surfaces at the SENDER instead of vanishing as an acked
     loss. *)
  let topo = line_topology 3 5. 8. in
  let config =
    {
      Node.Network.default_config with
      ack_mode = Node.Network.Software;
      upstack = Node.Upstack.create ~drop_probability:1.0 ~prelog_fraction:1.0;
      mac = { Net.Mac.default_config with max_retx = 4; attempt_interval = 0.05 };
    }
  in
  let net = run_simple ~config topo in
  let truth = Node.Network.truth net in
  Logsys.Truth.iter truth (fun (origin, _) fate ->
      if origin = 2 then begin
        Alcotest.(check string) "timeout, not acked loss"
          (Logsys.Cause.name Logsys.Cause.Timeout_loss)
          (Logsys.Cause.name fate.cause);
        Alcotest.(check (option int)) "at the sender" (Some 2) fate.loss_node
      end)

let reboots_inject_failures_consistently () =
  (* Aggressive reboots: the network stays consistent (every packet gets
     exactly one fate, no crash), deliveries drop, and received losses
     appear at the rebooting relays. *)
  let topo = line_topology 4 5. 8. in
  let run mtbf =
    (* High data rate keeps queues busy so reboots have something to
       kill. *)
    let config =
      {
        Node.Network.default_config with
        reboot_mtbf = mtbf;
        data_interval = 5.;
        data_jitter = 2.;
      }
    in
    let net = run_simple ~config topo in
    let truth = Node.Network.truth net in
    Alcotest.(check int) "every packet fated"
      (Node.Network.packets_generated net)
      (Logsys.Truth.count truth);
    let counts = Logsys.Truth.cause_counts truth in
    let get c = Option.value ~default:0 (List.assoc_opt c counts) in
    ( net,
      Prelude.Stats.ratio (get Logsys.Cause.Delivered)
        (Logsys.Truth.count truth),
      get Logsys.Cause.Received_loss )
  in
  let _, stable_rate, stable_received = run None in
  let net, flaky_rate, flaky_received = run (Some 60.) in
  let reboots =
    List.init 4 (fun i -> Node.Network.reboots_of net i)
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check bool) "reboots happened" true (reboots > 5);
  Alcotest.(check int) "sink never reboots" 0 (Node.Network.reboots_of net 0);
  Alcotest.(check bool)
    (Printf.sprintf "delivery rate suffers (%.3f < %.3f)" flaky_rate
       stable_rate)
    true
    (flaky_rate < stable_rate);
  Alcotest.(check bool) "in-node losses appear" true
    (flaky_received > stable_received)

let reboot_wipes_spool () =
  let topo = line_topology 3 5. 8. in
  let config =
    {
      Node.Network.default_config with
      reboot_mtbf = Some 100.;
      log_transport = Some Node.Network.default_log_transport;
    }
  in
  let net = run_simple ~config topo in
  match Node.Network.in_band_stats net with
  | None -> Alcotest.fail "stats expected"
  | Some (written, dropped, collected) ->
      Alcotest.(check bool) "spool records were lost to reboots" true
        (dropped > 0);
      Alcotest.(check bool) "collection still works" true
        (collected > 0 && collected <= written)

let network_energy_and_exchanges () =
  let topo = line_topology 4 5. 8. in
  let net = run_simple topo in
  let exchanges, attempts = Node.Network.exchange_stats net in
  Alcotest.(check bool) "exchanges happened" true (exchanges > 10);
  Alcotest.(check bool) "attempts >= exchanges" true (attempts >= exchanges);
  (* Every node paid at least the LPL sampling baseline; relays paid more
     than leaves. *)
  let active i = Net.Energy.active_time (Node.Network.energy_of net i) in
  for i = 0 to 3 do
    Alcotest.(check bool) "baseline charged" true (active i > 0.)
  done;
  Alcotest.(check bool) "relay (1) outworks leaf (3)" true
    (active 1 > active 3)

let network_ground_truth_ordered () =
  let topo = line_topology 4 5. 8. in
  let net = run_simple topo in
  let gt = Logsys.Logger.ground_truth (Node.Network.logger net) in
  let ok = ref true in
  let rec check = function
    | (a : Logsys.Record.t) :: (b : Logsys.Record.t) :: rest ->
        if Logsys.Record.compare_by_time a b > 0 then ok := false;
        check (b :: rest)
    | _ -> ()
  in
  check gt;
  Alcotest.(check bool) "sorted" true !ok

let () =
  Alcotest.run "node"
    [
      ( "server",
        [
          Alcotest.test_case "windows" `Quick server_windows;
          Alcotest.test_case "downtime" `Quick server_downtime;
          Alcotest.test_case "invalid" `Quick server_invalid;
        ] );
      ( "serial",
        [
          Alcotest.test_case "stable" `Quick serial_stable_never_drops;
          Alcotest.test_case "step function" `Quick serial_step_function;
          Alcotest.test_case "prelog split" `Quick serial_prelog_split;
        ] );
      ( "upstack",
        [
          Alcotest.test_case "reliable" `Quick upstack_reliable;
          Alcotest.test_case "split" `Quick upstack_split;
          Alcotest.test_case "invalid" `Quick upstack_invalid;
        ] );
      ( "network",
        [
          Alcotest.test_case "delivers" `Quick network_delivers_on_good_links;
          Alcotest.test_case "every packet fated" `Quick
            network_every_packet_has_fate;
          Alcotest.test_case "tree to sink" `Quick network_tree_points_to_sink;
          Alcotest.test_case "log protocol order" `Quick
            network_logs_match_protocol_order;
          Alcotest.test_case "dead link" `Quick network_timeout_on_dead_link;
          Alcotest.test_case "server outage" `Quick
            network_server_outage_counted;
          Alcotest.test_case "serial losses" `Quick network_serial_losses;
          Alcotest.test_case "upstack acked losses" `Quick
            network_upstack_acked_losses;
          Alcotest.test_case "deterministic" `Quick network_deterministic;
          Alcotest.test_case "reboots" `Quick
            reboots_inject_failures_consistently;
          Alcotest.test_case "reboot wipes spool" `Quick reboot_wipes_spool;
          Alcotest.test_case "software ack vs serial faults" `Quick
            software_ack_retries_through_serial_faults;
          Alcotest.test_case "software ack black hole" `Quick
            software_ack_upstack_black_hole_times_out;
          Alcotest.test_case "energy and exchanges" `Quick
            network_energy_and_exchanges;
          Alcotest.test_case "ground truth ordered" `Quick
            network_ground_truth_ordered;
        ] );
    ]

(* Tests for the CTP routing substrate. *)

(* -- Estimator ------------------------------------------------------------- *)

let estimator_converges_up () =
  let e = Ctp.Estimator.create ~alpha:0.9 ~initial:0.5 () in
  for _ = 1 to 200 do
    Ctp.Estimator.observe e ~received:true
  done;
  Alcotest.(check bool) "quality near 1" true (Ctp.Estimator.quality e > 0.99);
  Alcotest.(check bool) "etx near 1" true (Ctp.Estimator.etx e < 1.02)

let estimator_converges_down () =
  let e = Ctp.Estimator.create ~alpha:0.9 ~initial:0.9 () in
  for _ = 1 to 500 do
    Ctp.Estimator.observe e ~received:false
  done;
  Alcotest.(check (float 1e-9)) "etx capped" Ctp.Estimator.max_etx
    (Ctp.Estimator.etx e)

let estimator_ewma_step () =
  let e = Ctp.Estimator.create ~alpha:0.9 ~initial:0.5 () in
  Ctp.Estimator.observe e ~received:true;
  Alcotest.(check (float 1e-9)) "one step" 0.55 (Ctp.Estimator.quality e);
  Alcotest.(check int) "samples" 1 (Ctp.Estimator.samples e)

let estimator_invalid () =
  Alcotest.check_raises "bad alpha" (Invalid_argument "Estimator.create: alpha")
    (fun () -> ignore (Ctp.Estimator.create ~alpha:1.5 ()));
  Alcotest.check_raises "bad initial"
    (Invalid_argument "Estimator.create: initial") (fun () ->
      ignore (Ctp.Estimator.create ~initial:0. ()))

(* -- Router ----------------------------------------------------------------- *)

let sink_router () =
  let r = Ctp.Router.create ~self:0 ~is_sink:true () in
  Alcotest.(check (float 1e-9)) "sink path etx 0" 0. (Ctp.Router.path_etx r);
  Alcotest.(check bool) "sink has route" true (Ctp.Router.has_route r);
  Alcotest.(check bool) "sink never has parent" true
    (Ctp.Router.parent r = None);
  (* Beacons do not give the sink a parent. *)
  Ctp.Router.on_beacon_received r ~from:3 ~advertised_etx:1.;
  Alcotest.(check bool) "still none" true (Ctp.Router.parent r = None)

let node_adopts_parent () =
  let r = Ctp.Router.create ~self:5 ~is_sink:false () in
  Alcotest.(check bool) "no route initially" false (Ctp.Router.has_route r);
  Alcotest.(check (float 1e-9)) "infinite cost" infinity (Ctp.Router.path_etx r);
  Ctp.Router.on_beacon_received r ~from:0 ~advertised_etx:0.;
  Alcotest.(check (option int)) "adopted" (Some 0) (Ctp.Router.parent r);
  Alcotest.(check bool) "finite cost" true (Ctp.Router.path_etx r < infinity)

let paper_parent_rule () =
  (* §V.A.3: switch iff pathETX(current) > pathETX(cand) + linkETX(cand). *)
  let r = Ctp.Router.create ~self:5 ~is_sink:false ~hysteresis:0. () in
  (* Build up both links with identical estimator histories first. *)
  for _ = 1 to 50 do
    Ctp.Router.on_beacon_received r ~from:1 ~advertised_etx:4.;
    Ctp.Router.on_beacon_received r ~from:2 ~advertised_etx:6.
  done;
  Alcotest.(check (option int)) "cheaper advert wins" (Some 1)
    (Ctp.Router.parent r);
  (* Node 2 now advertises a much better cost. *)
  Ctp.Router.on_beacon_received r ~from:2 ~advertised_etx:1.;
  Alcotest.(check (option int)) "switches" (Some 2) (Ctp.Router.parent r)

let hysteresis_damps_thrash () =
  let r = Ctp.Router.create ~self:5 ~is_sink:false ~hysteresis:0.75 () in
  for _ = 1 to 50 do
    Ctp.Router.on_beacon_received r ~from:1 ~advertised_etx:4.;
    Ctp.Router.on_beacon_received r ~from:2 ~advertised_etx:4.2
  done;
  Alcotest.(check (option int)) "first parent" (Some 1) (Ctp.Router.parent r);
  (* A marginal improvement below hysteresis does not switch. *)
  Ctp.Router.on_beacon_received r ~from:2 ~advertised_etx:3.8;
  Alcotest.(check (option int)) "no switch" (Some 1) (Ctp.Router.parent r)

let infinite_advert_not_parent () =
  let r = Ctp.Router.create ~self:5 ~is_sink:false () in
  Ctp.Router.on_beacon_received r ~from:1 ~advertised_etx:infinity;
  Alcotest.(check (option int)) "routeless neighbor rejected" None
    (Ctp.Router.parent r)

let missed_beacons_degrade () =
  let r = Ctp.Router.create ~self:5 ~is_sink:false ~hysteresis:0. () in
  for _ = 1 to 30 do
    Ctp.Router.on_beacon_received r ~from:1 ~advertised_etx:2.;
    Ctp.Router.on_beacon_received r ~from:2 ~advertised_etx:2.5
  done;
  Alcotest.(check (option int)) "parent 1" (Some 1) (Ctp.Router.parent r);
  (* Node 1's link collapses: many missed beacon windows. *)
  for _ = 1 to 40 do
    Ctp.Router.on_beacon_missed r ~from:1
  done;
  Alcotest.(check (option int)) "rerouted to 2" (Some 2) (Ctp.Router.parent r)

let data_feedback_degrades () =
  let r = Ctp.Router.create ~self:5 ~is_sink:false ~hysteresis:0. () in
  for _ = 1 to 30 do
    Ctp.Router.on_beacon_received r ~from:1 ~advertised_etx:2.;
    Ctp.Router.on_beacon_received r ~from:2 ~advertised_etx:2.5
  done;
  for _ = 1 to 40 do
    Ctp.Router.on_data_tx_outcome r ~to_:1 ~acked:false
  done;
  Alcotest.(check (option int)) "rerouted after tx failures" (Some 2)
    (Ctp.Router.parent r)

let self_beacon_ignored () =
  let r = Ctp.Router.create ~self:5 ~is_sink:false () in
  Ctp.Router.on_beacon_received r ~from:5 ~advertised_etx:0.;
  Alcotest.(check int) "no self entry" 0 (Ctp.Router.neighbor_count r)

let router_reset () =
  let r = Ctp.Router.create ~self:5 ~is_sink:false () in
  Ctp.Router.on_beacon_received r ~from:1 ~advertised_etx:2.;
  Alcotest.(check bool) "had route" true (Ctp.Router.has_route r);
  Ctp.Router.reset r;
  Alcotest.(check bool) "route gone" false (Ctp.Router.has_route r);
  Alcotest.(check int) "table empty" 0 (Ctp.Router.neighbor_count r);
  (* A sink stays a sink through reset. *)
  let sink = Ctp.Router.create ~self:0 ~is_sink:true () in
  Ctp.Router.reset sink;
  Alcotest.(check bool) "sink still routes" true (Ctp.Router.has_route sink)

let dup_cache_clear () =
  let c = Ctp.Dup_cache.create ~capacity:4 in
  Ctp.Dup_cache.remember c ~origin:1 ~seq:1;
  Ctp.Dup_cache.clear c;
  Alcotest.(check int) "empty" 0 (Ctp.Dup_cache.length c);
  Alcotest.(check bool) "forgotten" false (Ctp.Dup_cache.seen c ~origin:1 ~seq:1);
  (* Reusable after clear. *)
  Ctp.Dup_cache.remember c ~origin:1 ~seq:2;
  Alcotest.(check int) "usable" 1 (Ctp.Dup_cache.length c)

let link_etx_accessor () =
  let r = Ctp.Router.create ~self:5 ~is_sink:false () in
  Alcotest.(check bool) "unknown neighbor" true (Ctp.Router.link_etx r 9 = None);
  Ctp.Router.on_beacon_received r ~from:9 ~advertised_etx:1.;
  Alcotest.(check bool) "known" true (Ctp.Router.link_etx r 9 <> None)

(* -- Dup cache ------------------------------------------------------------- *)

let dup_cache_basics () =
  let c = Ctp.Dup_cache.create ~capacity:4 in
  Alcotest.(check bool) "fresh miss" false
    (Ctp.Dup_cache.check_and_remember c ~origin:1 ~seq:1);
  Alcotest.(check bool) "second hit" true
    (Ctp.Dup_cache.check_and_remember c ~origin:1 ~seq:1);
  Alcotest.(check bool) "other packet miss" false
    (Ctp.Dup_cache.check_and_remember c ~origin:1 ~seq:2)

let dup_cache_eviction () =
  let c = Ctp.Dup_cache.create ~capacity:2 in
  Ctp.Dup_cache.remember c ~origin:0 ~seq:0;
  Ctp.Dup_cache.remember c ~origin:0 ~seq:1;
  Ctp.Dup_cache.remember c ~origin:0 ~seq:2;
  (* seq 0 was evicted (FIFO). *)
  Alcotest.(check bool) "oldest evicted" false (Ctp.Dup_cache.seen c ~origin:0 ~seq:0);
  Alcotest.(check bool) "newest present" true (Ctp.Dup_cache.seen c ~origin:0 ~seq:2);
  Alcotest.(check int) "bounded" 2 (Ctp.Dup_cache.length c)

let dup_cache_reinsert_no_dup_entry () =
  let c = Ctp.Dup_cache.create ~capacity:2 in
  Ctp.Dup_cache.remember c ~origin:0 ~seq:0;
  Ctp.Dup_cache.remember c ~origin:0 ~seq:0;
  Alcotest.(check int) "single entry" 1 (Ctp.Dup_cache.length c)

let dup_cache_property =
  QCheck.Test.make ~name:"dup cache size never exceeds capacity" ~count:100
    QCheck.(pair (int_range 1 8) (small_list (pair small_nat small_nat)))
    (fun (capacity, inserts) ->
      let c = Ctp.Dup_cache.create ~capacity in
      List.iter (fun (o, s) -> Ctp.Dup_cache.remember c ~origin:o ~seq:s) inserts;
      Ctp.Dup_cache.length c <= capacity)

(* -- Forward queue ---------------------------------------------------------- *)

let queue_fifo () =
  let q = Ctp.Forward_queue.create ~capacity:3 in
  let alloc = Net.Packet.allocator () in
  let p1 = Net.Packet.fresh alloc ~origin:0 ~now:0. in
  let p2 = Net.Packet.fresh alloc ~origin:0 ~now:1. in
  Alcotest.(check bool) "push 1" true (Ctp.Forward_queue.push q p1 = `Enqueued);
  Alcotest.(check bool) "push 2" true (Ctp.Forward_queue.push q p2 = `Enqueued);
  Alcotest.(check bool) "peek head" true
    (Ctp.Forward_queue.peek q = Some p1);
  Alcotest.(check bool) "pop 1" true (Ctp.Forward_queue.pop q = Some p1);
  Alcotest.(check bool) "pop 2" true (Ctp.Forward_queue.pop q = Some p2);
  Alcotest.(check bool) "empty" true (Ctp.Forward_queue.pop q = None)

let queue_overflow () =
  let q = Ctp.Forward_queue.create ~capacity:1 in
  let alloc = Net.Packet.allocator () in
  let p1 = Net.Packet.fresh alloc ~origin:0 ~now:0. in
  let p2 = Net.Packet.fresh alloc ~origin:0 ~now:1. in
  Alcotest.(check bool) "fits" true (Ctp.Forward_queue.push q p1 = `Enqueued);
  Alcotest.(check bool) "full" true (Ctp.Forward_queue.is_full q);
  Alcotest.(check bool) "overflow" true (Ctp.Forward_queue.push q p2 = `Overflow);
  Alcotest.(check int) "unchanged" 1 (Ctp.Forward_queue.length q)

let () =
  Alcotest.run "ctp"
    [
      ( "estimator",
        [
          Alcotest.test_case "converges up" `Quick estimator_converges_up;
          Alcotest.test_case "converges down (capped)" `Quick
            estimator_converges_down;
          Alcotest.test_case "ewma step" `Quick estimator_ewma_step;
          Alcotest.test_case "invalid args" `Quick estimator_invalid;
        ] );
      ( "router",
        [
          Alcotest.test_case "sink" `Quick sink_router;
          Alcotest.test_case "adopts parent" `Quick node_adopts_parent;
          Alcotest.test_case "paper parent rule" `Quick paper_parent_rule;
          Alcotest.test_case "hysteresis" `Quick hysteresis_damps_thrash;
          Alcotest.test_case "infinite advert" `Quick infinite_advert_not_parent;
          Alcotest.test_case "missed beacons reroute" `Quick
            missed_beacons_degrade;
          Alcotest.test_case "data feedback reroutes" `Quick
            data_feedback_degrades;
          Alcotest.test_case "self beacon ignored" `Quick self_beacon_ignored;
          Alcotest.test_case "link etx accessor" `Quick link_etx_accessor;
          Alcotest.test_case "reset" `Quick router_reset;
        ] );
      ( "dup_cache",
        [
          Alcotest.test_case "basics" `Quick dup_cache_basics;
          Alcotest.test_case "eviction" `Quick dup_cache_eviction;
          Alcotest.test_case "reinsert" `Quick dup_cache_reinsert_no_dup_entry;
          Alcotest.test_case "clear" `Quick dup_cache_clear;
          QCheck_alcotest.to_alcotest dup_cache_property;
        ] );
      ( "forward_queue",
        [
          Alcotest.test_case "fifo" `Quick queue_fifo;
          Alcotest.test_case "overflow" `Quick queue_overflow;
        ] );
    ]

(* Cross-validation of the static loss-radius analysis against the
   inference engine itself: the checker's predictions are claims about
   what §IV.B reconstruction does under targeted record loss, so we drive
   the engine and hold it to them.

   For every shortcut site the analysis reports:

   - finite radius k: there must be two distinct model-consistent ground
     truths whose surviving projection is identical with at most k lost
     records each — so the (deterministic) engine output must diverge
     from at least one of them.  We assert both witnesses replay on the
     FSM, feed the surviving projection to the engine, and check the
     reconstruction is itself a model-consistent completion that differs
     from one of the two ground truths.

   - infinite radius (the safe verdict): brute-force enumeration up to a
     generous bound must find exactly one completion, and the engine must
     reconstruct exactly it — a false-safe site would show up as either a
     second completion or a diverging reconstruction.

   The same harness runs over the builtin models and a qcheck corpus of
   random FSMs with random extra edges (which seed diamonds, duplicate
   projections, and cycles), so the soundness claim is not anchored to
   hand-picked examples. *)

open Refill_check
module Fsm = Refill.Fsm
module Engine = Refill.Engine

(* -- Engine driver ----------------------------------------------------------- *)

(* Single-node reconstruction: feed the surviving labels, collect the
   reconstructed flow as (label, entered, inferred) triples. *)
let reconstruct fsm labels =
  let config =
    {
      Engine.fsm_of = (fun _ -> fsm);
      prerequisites = (fun ~node:_ ~label:_ ~payload:_ -> []);
      infer_payload = (fun ~node:_ ~label:_ -> None);
    }
  in
  let items = ref [] in
  let stats =
    Engine.process config
      (Engine.Events
         (Array.of_list (List.map (fun l -> (0, l, None)) labels)))
      ~emit:(fun (it : _ Engine.item) ->
        items := (it.label, it.entered, it.inferred) :: !items)
  in
  (List.rev !items, stats)

(* -- Per-site validation ------------------------------------------------------ *)

(* Replay [labels] from the initial state with the engine's own
   first-added-wins normal steps; [Some x] when every label fires normally
   and lands on [x].  Sites whose access path would misfire (possible on
   nondeterministic corpus FSMs) are skipped rather than mis-asserted. *)
let replay_prefix fsm labels =
  List.fold_left
    (fun acc l ->
      match acc with
      | None -> None
      | Some s -> Fsm.normal_next fsm ~from:s l)
    (Some (Fsm.initial fsm))
    labels

(* A completion must chain edge-to-edge from the site state, use only real
   transitions, and end with the observed label. *)
let completion_valid fsm ~state ~label c =
  c <> []
  && (let _, _, last = List.nth c (List.length c - 1) in
      last = label)
  && (match c with (s, _, _) :: _ -> s = state | [] -> false)
  && List.for_all
       (fun (s, d, l) ->
         List.mem (s, d, l) (Fsm.transitions fsm))
       c
  &&
  let rec chained = function
    | (_, d, _) :: ((s, _, _) :: _ as rest) -> d = s && chained rest
    | _ -> true
  in
  chained c

(* The engine's reconstruction of the site, as the completion it implies:
   the items it emits past the prefix, which must be inferred lost events
   followed by the observed one. *)
let engine_tail items prefix_len =
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  drop prefix_len items

(* What the engine should emit for a given ground-truth completion: every
   lost edge as an inferred event, the final one as the observed record. *)
let completion_as_items c =
  let n = List.length c in
  List.mapi (fun i (_, d, l) -> (l, d, i < n - 1)) c

(* Don't let the witness search blow up on pathological corpus FSMs: a
   radius this large only arises on near-linear graphs in practice, and
   the static DP already terminated; the dynamic check is skipped. *)
let max_dynamic_radius = 10

let validate_site fsm (site : _ Loss.site) =
  let fail fmt =
    Printf.ksprintf (fun m -> Alcotest.failf "site validation: %s" m) fmt
  in
  let prefix =
    match
      Fsm.shortest_path fsm ~from:(Fsm.initial fsm) ~to_:site.state
    with
    | Some p -> List.map (fun (_, _, l) -> l) p
    | None -> fail "site state unreachable"
  in
  let prefix_ok = replay_prefix fsm prefix = Some site.state in
  match site.radius with
  | Some k when k > max_dynamic_radius -> ()
  | Some k ->
      (* (a) two distinct ground truths within k drops each... *)
      (match site.witnesses with
      | [ w1; w2 ] ->
          if w1 = w2 then fail "witnesses not distinct";
          List.iter
            (fun w ->
              if not (completion_valid fsm ~state:site.state ~label:site.label w)
              then fail "witness does not replay on the FSM";
              if List.length w - 1 > k then
                fail "witness exceeds the predicted radius %d" k)
            [ w1; w2 ];
          (* ...with identical surviving projections by construction: only
             the final record of each survives, and both carry the label. *)
          if prefix_ok then begin
            let observed = prefix @ [ site.label ] in
            let items, stats = reconstruct fsm observed in
            if stats.Engine.skipped <> 0 then
              fail "engine skipped an event on the surviving projection";
            let tail = engine_tail items (List.length prefix) in
            let all =
              Loss.completions fsm ~from:site.state site.label ~max_losses:k
                ~max_count:64
            in
            let as_items = List.map (completion_as_items) all in
            if not (List.mem tail as_items) then
              fail "engine reconstruction is not a model-consistent completion";
            let truths =
              List.map completion_as_items [ w1; w2 ]
            in
            if not (List.exists (fun t -> t <> tail) truths) then
              fail "no divergent ground truth under %d drops" k
          end
      | ws -> fail "expected two witnesses, got %d" (List.length ws))
  | None ->
      (* (b) the safe verdict: a unique completion even far past any cycle,
         and the engine reconstructs exactly it. *)
      let bound = (2 * Fsm.n_states fsm) + 2 in
      (match
         Loss.completions fsm ~from:site.state site.label ~max_losses:bound
           ~max_count:2
       with
      | [ unique ] ->
          if prefix_ok then begin
            let observed = prefix @ [ site.label ] in
            let items, stats = reconstruct fsm observed in
            if stats.Engine.skipped <> 0 then
              fail "engine skipped an event at a safe site";
            let tail = engine_tail items (List.length prefix) in
            if tail <> completion_as_items unique then
              fail "engine diverged at a statically safe site"
          end
      | cs ->
          fail "safe site has %d completions within %d losses (false safe)"
            (List.length cs) bound)

let validate_fsm fsm =
  List.iter (validate_site fsm) (Loss.analyze fsm)

(* -- Builtin models ----------------------------------------------------------- *)

let builtin_roles =
  List.concat_map
    (fun (r : _ Model.role) -> [ ("ctp/" ^ r.role, r.fsm) ])
    Builtin.ctp.Model.roles

let crossval_ctp () =
  List.iter (fun (_, fsm) -> validate_fsm fsm) builtin_roles;
  (* The harness must not be vacuous: ctp has finite-radius sites. *)
  let finite =
    List.concat_map
      (fun (_, fsm) ->
        List.filter
          (fun (s : _ Loss.site) -> s.radius <> None)
          (Loss.analyze fsm))
      builtin_roles
  in
  Alcotest.(check bool) "ctp has finite-radius sites" true (finite <> [])

let crossval_dissem () =
  List.iter
    (fun (r : _ Model.role) -> validate_fsm r.fsm)
    Builtin.dissem.Model.roles

let crossval_broken () =
  List.iter
    (fun (r : _ Model.role) -> validate_fsm r.fsm)
    Builtin.broken.Model.roles;
  (* And the pinned fixture values survive the dynamic check: the k=1 and
     k=2 sites of role c diverge, its two safe sites do not. *)
  let c =
    List.find (fun (r : _ Model.role) -> r.role = "c")
      Builtin.broken.Model.roles
  in
  let radii =
    List.map (fun (s : _ Loss.site) -> s.radius) (Loss.analyze c.fsm)
  in
  Alcotest.(check (list (option int)))
    "role c radii" [ Some 1; Some 2; None; None ] radii

(* -- qcheck corpus ------------------------------------------------------------ *)

(* Arborescence plus a few arbitrary extra edges re-using the same label
   pool: seeds diamonds, duplicate projections, joins, and cycles, i.e.
   exactly the shapes that produce finite radii. *)
let corpus_gen =
  QCheck.(
    pair
      (list_of_size (Gen.int_range 1 5) (int_range 0 1000))
      (list_of_size (Gen.int_range 0 3) (triple small_nat small_nat small_nat)))

let corpus_fsm (parents, extras) =
  let n = List.length parents + 1 in
  let f = Fsm.create ~n_states:n ~initial:0 in
  List.iteri
    (fun i p ->
      let child = i + 1 in
      Fsm.add_transition f ~src:(p mod child) ~dst:child
        ("l" ^ string_of_int child))
    parents;
  List.iter
    (fun (a, b, c) ->
      Fsm.add_transition f ~src:(a mod n) ~dst:(b mod n)
        ("l" ^ string_of_int (c mod (n + 1))))
    extras;
  f

let crossval_corpus =
  QCheck.Test.make
    ~name:"every finite-k prediction diverges; no false-safe sites"
    ~count:300 corpus_gen (fun spec ->
      validate_fsm (corpus_fsm spec);
      true)

let () =
  Alcotest.run "refill-check-crossval"
    [
      ( "builtins",
        [
          Alcotest.test_case "ctp" `Quick crossval_ctp;
          Alcotest.test_case "dissem" `Quick crossval_dissem;
          Alcotest.test_case "broken-demo" `Quick crossval_broken;
        ] );
      ("corpus", [ QCheck_alcotest.to_alcotest crossval_corpus ]);
    ]

(* Tests for the connected inference engines and the transition algorithm,
   built around the four abstract examples of Fig. 3. Each node's FSM is the
   paper's two-edge chain: init --eA--> mid --eB--> done. *)

open Refill

let s_init = 0

let s_mid = 1

let s_done = 2

(* Node i's chain FSM with labels taken from [labels_of i]. *)
let chain_fsm (la, lb) =
  let f = Fsm.create ~n_states:3 ~initial:s_init in
  Fsm.add_transition f ~src:s_init ~dst:s_mid la;
  Fsm.add_transition f ~src:s_mid ~dst:s_done lb;
  f

(* Standard Fig. 3 node labels: node 1 = e1,e2; node 2 = e3,e4; node 3 =
   e5,e6. *)
let labels_of = function
  | 1 -> ("e1", "e2")
  | 2 -> ("e3", "e4")
  | 3 -> ("e5", "e6")
  | n -> Alcotest.failf "unexpected node %d" n

let config ~prerequisites : (string, unit) Engine.config =
  {
    fsm_of = (fun node -> chain_fsm (labels_of node));
    prerequisites = (fun ~node ~label ~payload:_ -> prerequisites node label);
    infer_payload = (fun ~node:_ ~label:_ -> None);
  }

(* The pre-redesign run shape (event list in, item list out) over the
   sink-parameterized [Engine.process]. *)
let engine_run ?use_intra cfg ~events =
  let acc = ref [] in
  let stats =
    Engine.process ?use_intra cfg
      (Engine.Events (Array.of_list events))
      ~emit:(fun it -> acc := it :: !acc)
  in
  (List.rev !acc, stats)

let flow_labels items =
  List.map (fun (i : (string, unit) Engine.item) -> i.label) items

let index label items =
  match List.find_index (fun (i : (string, unit) Engine.item) -> i.label = label) items with
  | Some i -> i
  | None -> Alcotest.failf "label %s missing from flow" label

let event node label = (node, label, None)

(* Fig. 3 (a): cascading prerequisites — e2 needs node 2 done, e4 needs
   node 3 done. *)
let cascade_prereqs node label =
  match (node, label) with
  | 1, "e2" -> [ (2, s_done) ]
  | 2, "e4" -> [ (3, s_done) ]
  | _ -> []

let fig3a_full_logs () =
  let events =
    [
      event 1 "e1"; event 1 "e2"; event 2 "e3"; event 2 "e4"; event 3 "e5";
      event 3 "e6";
    ]
  in
  let items, stats =
    engine_run (config ~prerequisites:cascade_prereqs) ~events
  in
  Alcotest.(check (list string)) "paper's exact flow"
    [ "e1"; "e3"; "e5"; "e6"; "e4"; "e2" ]
    (flow_labels items);
  Alcotest.(check int) "all logged" 6 stats.emitted_logged;
  Alcotest.(check int) "none inferred" 0 stats.emitted_inferred;
  Alcotest.(check int) "none skipped" 0 stats.skipped

let fig3a_only_e2 () =
  (* §IV.B: "even when there is only one event e2 on node 1 and all other
     events are lost, the transition algorithm can generate the correct
     event flow and infer lost events." *)
  let items, stats =
    engine_run (config ~prerequisites:cascade_prereqs) ~events:[ event 1 "e2" ]
  in
  Alcotest.(check (list string)) "reconstructed flow"
    [ "e1"; "e3"; "e5"; "e6"; "e4"; "e2" ]
    (flow_labels items);
  Alcotest.(check int) "five inferred" 5 stats.emitted_inferred;
  let inferred =
    List.filter (fun (i : (string, unit) Engine.item) -> i.inferred) items
  in
  Alcotest.(check (list string)) "exactly the lost ones"
    [ "e1"; "e3"; "e5"; "e6"; "e4" ]
    (flow_labels inferred)

let fig3b_one_to_many () =
  (* e4 requires both node 1 and node 3 to be done. *)
  let prereqs node label =
    match (node, label) with
    | 2, "e4" -> [ (1, s_done); (3, s_done) ]
    | _ -> []
  in
  let events =
    [
      event 1 "e1"; event 1 "e2"; event 2 "e3"; event 2 "e4"; event 3 "e5";
      event 3 "e6";
    ]
  in
  let items, _ = engine_run (config ~prerequisites:prereqs) ~events in
  Alcotest.(check bool) "e2 before e4" true (index "e2" items < index "e4" items);
  Alcotest.(check bool) "e6 before e4" true (index "e6" items < index "e4" items);
  Alcotest.(check int) "all six" 6 (List.length items)

let fig3c_many_to_one () =
  (* e3 on node 2 is prerequisite for both e1 and e5. *)
  let prereqs node label =
    match (node, label) with
    | 1, "e1" | 3, "e5" -> [ (2, s_mid) ]
    | _ -> []
  in
  let events =
    [
      event 1 "e1"; event 1 "e2"; event 3 "e5"; event 3 "e6"; event 2 "e3";
      event 2 "e4";
    ]
  in
  let items, _ = engine_run (config ~prerequisites:prereqs) ~events in
  Alcotest.(check bool) "e3 before e1" true (index "e3" items < index "e1" items);
  Alcotest.(check bool) "e3 before e5" true (index "e3" items < index "e5" items)

let fig3d_mixed () =
  (* e3 ⊢ {e1, e5}; {e2, e6} ⊢ e4 — the negotiation pattern. *)
  let prereqs node label =
    match (node, label) with
    | 1, "e1" | 3, "e5" -> [ (2, s_mid) ]
    | 2, "e4" -> [ (1, s_done); (3, s_done) ]
    | _ -> []
  in
  let events =
    [
      event 1 "e1"; event 1 "e2"; event 2 "e3"; event 2 "e4"; event 3 "e5";
      event 3 "e6";
    ]
  in
  let items, _ = engine_run (config ~prerequisites:prereqs) ~events in
  List.iter
    (fun (before, after) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s before %s" before after)
        true
        (index before items < index after items))
    [ ("e3", "e1"); ("e3", "e5"); ("e2", "e4"); ("e6", "e4") ]

let fig3a_insensitive_to_merge_order () =
  (* Any merge preserving per-node order yields the same flow here. *)
  let orders =
    [
      [ event 1 "e1"; event 1 "e2"; event 2 "e3"; event 2 "e4"; event 3 "e5"; event 3 "e6" ];
      [ event 3 "e5"; event 3 "e6"; event 2 "e3"; event 2 "e4"; event 1 "e1"; event 1 "e2" ];
      [ event 1 "e1"; event 2 "e3"; event 3 "e5"; event 1 "e2"; event 2 "e4"; event 3 "e6" ];
    ]
  in
  let flows =
    List.map
      (fun events ->
        let items, _ =
          engine_run (config ~prerequisites:cascade_prereqs) ~events
        in
        flow_labels items
        |> List.filteri (fun _ _ -> true))
      orders
  in
  match flows with
  | first :: rest ->
      List.iter
        (fun f ->
          Alcotest.(check (list string)) "same set" (List.sort compare first)
            (List.sort compare f))
        rest
  | [] -> assert false

(* -- Mechanics beyond Fig. 3 ------------------------------------------------ *)

let unfireable_events_skipped () =
  (* e2 from the initial state uses the intra transition; a label the FSM
     does not know is skipped. *)
  let cfg : (string, unit) Engine.config =
    {
      fsm_of = (fun _ -> chain_fsm ("e1", "e2"));
      prerequisites = (fun ~node:_ ~label:_ ~payload:_ -> []);
      infer_payload = (fun ~node:_ ~label:_ -> None);
    }
  in
  let items, stats = engine_run cfg ~events:[ (1, "bogus", None); (1, "e2", None) ] in
  Alcotest.(check int) "one skipped" 1 stats.skipped;
  Alcotest.(check (list string)) "e1 inferred then e2" [ "e1"; "e2" ]
    (flow_labels items)

let intra_fires_with_inferred_prefix () =
  let cfg : (string, unit) Engine.config =
    {
      fsm_of = (fun _ -> chain_fsm ("e1", "e2"));
      prerequisites = (fun ~node:_ ~label:_ ~payload:_ -> []);
      infer_payload = (fun ~node:_ ~label:_ -> None);
    }
  in
  let items, stats = engine_run cfg ~events:[ (1, "e2", None) ] in
  Alcotest.(check int) "e1 inferred" 1 stats.emitted_inferred;
  (match items with
  | [ first; second ] ->
      Alcotest.(check bool) "first inferred" true first.inferred;
      Alcotest.(check bool) "second logged" false second.inferred;
      Alcotest.(check int) "entered mid" s_mid first.entered;
      Alcotest.(check int) "entered done" s_done second.entered
  | _ -> Alcotest.fail "two items expected")

let historical_prerequisite () =
  (* Node 2 moves past the prerequisite state before node 1's event is
     processed; the prerequisite must still count as satisfied (visited
     history, not current state). *)
  let f2 () =
    let f = Fsm.create ~n_states:3 ~initial:0 in
    Fsm.add_transition f ~src:0 ~dst:1 "x";
    Fsm.add_transition f ~src:1 ~dst:2 "y";
    f
  in
  let cfg : (string, unit) Engine.config =
    {
      fsm_of = (fun node -> if node = 2 then f2 () else chain_fsm ("e1", "e2"));
      prerequisites =
        (fun ~node ~label ~payload:_ ->
          if node = 1 && label = "e1" then [ (2, 1) ] else []);
      infer_payload = (fun ~node:_ ~label:_ -> None);
    }
  in
  let items, stats =
    engine_run cfg ~events:[ (2, "x", None); (2, "y", None); (1, "e1", None) ]
  in
  Alcotest.(check int) "nothing inferred" 0 stats.emitted_inferred;
  Alcotest.(check (list string)) "order" [ "x"; "y"; "e1" ] (flow_labels items)

let prerequisite_cycle_terminates () =
  (* Mutual prerequisites: e1 needs node 2 mid, e3 needs node 1 mid. The
     driving-set guard must break the cycle. *)
  let cfg : (string, unit) Engine.config =
    {
      fsm_of = (fun node -> chain_fsm (labels_of node));
      prerequisites =
        (fun ~node ~label ~payload:_ ->
          match (node, label) with
          | 1, "e1" -> [ (2, s_mid) ]
          | 2, "e3" -> [ (1, s_mid) ]
          | _ -> []);
      infer_payload = (fun ~node:_ ~label:_ -> None);
    }
  in
  let items, _ = engine_run cfg ~events:[ event 1 "e1"; event 2 "e3" ] in
  (* Both events appear; the cycle resolved by inferring one side. *)
  Alcotest.(check bool) "e1 present" true
    (List.exists (fun (i : (string, unit) Engine.item) -> i.label = "e1" && not i.inferred) items);
  Alcotest.(check bool) "e3 present" true
    (List.exists (fun (i : (string, unit) Engine.item) -> i.label = "e3" && not i.inferred) items)

let unsatisfiable_prerequisite_ignored () =
  (* A prerequisite naming an unreachable state cannot be driven; the event
     still fires (best effort, matching step 3's permissiveness). *)
  let cfg : (string, unit) Engine.config =
    {
      fsm_of = (fun node -> chain_fsm (labels_of node));
      prerequisites =
        (fun ~node ~label ~payload:_ ->
          match (node, label) with
          | 1, "e1" -> [ (2, 42) ] (* state 42 does not exist *)
          | _ -> []);
      infer_payload = (fun ~node:_ ~label:_ -> None);
    }
  in
  match engine_run cfg ~events:[ event 1 "e1" ] with
  | exception _ -> Alcotest.fail "must not raise"
  | items, _ ->
      Alcotest.(check int) "fired anyway" 1 (List.length items)

let payload_synthesis_called () =
  let synthesized = ref [] in
  let cfg : (string, string) Engine.config =
    {
      fsm_of = (fun _ -> chain_fsm ("e1", "e2"));
      prerequisites = (fun ~node:_ ~label:_ ~payload:_ -> []);
      infer_payload =
        (fun ~node:_ ~label ->
          synthesized := label :: !synthesized;
          Some ("payload-" ^ label));
    }
  in
  let items, _ = engine_run cfg ~events:[ (1, "e2", Some "logged") ] in
  Alcotest.(check (list string)) "synthesis for lost e1" [ "e1" ] !synthesized;
  match items with
  | [ first; second ] ->
      Alcotest.(check (option string)) "synthesized payload"
        (Some "payload-e1") first.payload;
      Alcotest.(check (option string)) "original payload" (Some "logged")
        second.payload
  | _ -> Alcotest.fail "two items expected"

let stats_match_obs_counters () =
  (* Engine.stats is defined as the delta of the Refill_obs counters over
     the run; check the two agree on a cascading-inference scenario. *)
  let module C = Refill_obs.Metrics.Counter in
  let c_logged = C.v "refill_logged_events_total" in
  let c_inferred = C.v "refill_inferred_events_total" in
  let c_skipped = C.v "refill_skipped_events_total" in
  let c_cascades = C.v "refill_prereq_cascades_total" in
  let h_depth = Refill_obs.Metrics.Histogram.v "refill_drive_depth" in
  let logged0 = C.value c_logged
  and inferred0 = C.value c_inferred
  and skipped0 = C.value c_skipped
  and cascades0 = C.value c_cascades
  and depth_obs0 = Refill_obs.Metrics.Histogram.count h_depth in
  let _, stats =
    engine_run (config ~prerequisites:cascade_prereqs)
      ~events:[ event 1 "e2"; (1, "bogus", None) ]
  in
  Alcotest.(check int) "logged delta" stats.emitted_logged
    (C.value c_logged - logged0);
  Alcotest.(check int) "inferred delta" stats.emitted_inferred
    (C.value c_inferred - inferred0);
  Alcotest.(check int) "skipped delta" stats.skipped
    (C.value c_skipped - skipped0);
  (* e2's cascade drives nodes 2 then 3, so at least two prerequisite
     cascades ran and the depth histogram recorded them. *)
  Alcotest.(check bool) "cascades counted" true
    (C.value c_cascades - cascades0 >= 2);
  Alcotest.(check bool) "drive depth observed" true
    (Refill_obs.Metrics.Histogram.count h_depth - depth_obs0 >= 2)

(* §IV.B: the merged event list must preserve each node's local order,
   but the cross-node interleaving is arbitrary.  [shuffle_merge] draws a
   random interleaving of the per-node subsequences of [events]. *)
let shuffle_merge rng events =
  let nodes = List.sort_uniq compare (List.map (fun (n, _, _) -> n) events) in
  let queues =
    List.map
      (fun n -> ref (List.filter (fun (n', _, _) -> n' = n) events))
      nodes
  in
  let out = ref [] in
  let total = List.length events in
  for _ = 1 to total do
    let nonempty = List.filter (fun q -> !q <> []) queues in
    let q = List.nth nonempty (Prelude.Rng.int rng (List.length nonempty)) in
    match !q with
    | e :: rest ->
        q := rest;
        out := e :: !out
    | [] -> assert false
  done;
  List.rev !out

(* §IV.B claims the merged list's cross-node interleaving is arbitrary.
   That holds when each node's subsequence is a lossy projection of a
   valid local run (which real logs are): whatever the interleaving, the
   reconstruction has the same stats, the same event multiset, and the
   same per-node subsequences.  (For garbage inputs — labels outside a
   node's alphabet, impossible repeats — drives can legitimately bridge
   past unfireable events differently, so no such invariant exists.) *)
let interleaving_invariance_on_projections =
  QCheck.Test.make
    ~name:"reconstruction invariant under cross-node interleaving"
    ~count:300
    QCheck.(pair (int_bound 63) (int_bound 1_000_000))
    (fun (mask, seed) ->
      (* Bit 2i keeps node (i+1)'s first event, bit 2i+1 its second: every
         lossy projection of the three two-event local runs. *)
      let events =
        List.concat_map
          (fun i ->
            let node = i + 1 in
            let la, lb = labels_of node in
            (if mask land (1 lsl (2 * i)) <> 0 then [ (node, la, None) ]
             else [])
            @
            if mask land (1 lsl ((2 * i) + 1)) <> 0 then [ (node, lb, None) ]
            else [])
          [ 0; 1; 2 ]
      in
      let rng = Prelude.Rng.create ~seed:(Int64.of_int seed) in
      let run es =
        engine_run (config ~prerequisites:cascade_prereqs) ~events:es
      in
      let items_a, stats_a = run events in
      let items_b, stats_b = run (shuffle_merge rng events) in
      let k (i : (string, unit) Engine.item) = (i.node, i.label, i.inferred) in
      let multiset items = List.sort compare (List.map k items) in
      let per_node n items =
        List.filter_map
          (fun (i : (string, unit) Engine.item) ->
            if i.node = n then Some (k i) else None)
          items
      in
      stats_a = stats_b
      && multiset items_a = multiset items_b
      && List.for_all
           (fun n -> per_node n items_a = per_node n items_b)
           [ 1; 2; 3 ])

(* On complete (lossless) logs the reconstruction itself is invariant:
   same event multiset and same per-node subsequences, whatever the
   interleaving. *)
let interleaving_preserves_lossless_output =
  QCheck.Test.make
    ~name:"lossless output invariant under cross-node interleaving"
    ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let events =
        [
          event 1 "e1"; event 1 "e2"; event 2 "e3"; event 2 "e4";
          event 3 "e5"; event 3 "e6";
        ]
      in
      let rng = Prelude.Rng.create ~seed:(Int64.of_int seed) in
      let run es =
        fst (engine_run (config ~prerequisites:cascade_prereqs) ~events:es)
      in
      let canonical = run events in
      let shuffled = run (shuffle_merge rng events) in
      let key (i : (string, unit) Engine.item) = (i.node, i.label, i.inferred) in
      let multiset items = List.sort compare (List.map key items) in
      let per_node node items =
        List.filter_map
          (fun (i : (string, unit) Engine.item) ->
            if i.node = node then Some (key i) else None)
          items
      in
      multiset canonical = multiset shuffled
      && List.for_all
           (fun n -> per_node n canonical = per_node n shuffled)
           [ 1; 2; 3 ])

let intra_counter_counts_only_taken_transitions () =
  (* Regression for the counter-inflation bug: [consume_helps] probes
     [Fsm.infer_intra_id] speculatively while a drive decides whether a
     pending event helps, and those probes must not count.  Here
     [e2@1; e4@2] takes exactly two intra transitions (e2 bridges over the
     lost e1, e4 over the lost e3), but e2's drive of node 2 also *probes*
     the intra derivation for the pending e4 — with the counter inside the
     FSM query the delta read 3. *)
  let module C = Refill_obs.Metrics.Counter in
  let c_intra = C.v "refill_intra_inferences_total" in
  let before = C.value c_intra in
  let items, stats =
    engine_run (config ~prerequisites:cascade_prereqs)
      ~events:[ event 1 "e2"; event 2 "e4" ]
  in
  Alcotest.(check (list string)) "reconstructed flow"
    [ "e1"; "e3"; "e5"; "e6"; "e4"; "e2" ]
    (flow_labels items);
  Alcotest.(check int) "both logged events fired" 2 stats.emitted_logged;
  Alcotest.(check int) "exactly the two intra transitions taken" 2
    (C.value c_intra - before)

(* Strong ordering invariant: whenever an event with a prerequisite fires,
   the prerequisite state has been entered strictly earlier in the flow. *)
let prerequisites_precede_in_flow =
  QCheck.Test.make ~name:"prerequisite states precede dependent events"
    ~count:300
    QCheck.(small_list (pair (int_range 1 3) (int_range 0 5)))
    (fun raw ->
      let all_labels = [| "e1"; "e2"; "e3"; "e4"; "e5"; "e6" |] in
      let events = List.map (fun (n, l) -> (n, all_labels.(l), None)) raw in
      let items, _ =
        engine_run (config ~prerequisites:cascade_prereqs) ~events
      in
      (* Track, per node, the flow index at which each state was entered. *)
      let entered = Hashtbl.create 16 in
      List.for_all
        (fun (ok, idx) -> ok && idx >= 0)
        (List.mapi
           (fun idx (i : (string, unit) Engine.item) ->
             let ok =
               List.for_all
                 (fun (rnode, rstate) ->
                   match Hashtbl.find_opt entered (rnode, rstate) with
                   | Some earlier -> earlier < idx
                   | None -> false)
                 (cascade_prereqs i.node i.label)
             in
             Hashtbl.replace entered (i.node, i.entered) idx;
             (* First entry wins; replace only if absent. *)
             (match Hashtbl.find_opt entered (i.node, i.entered) with
             | Some prev when prev < idx ->
                 Hashtbl.replace entered (i.node, i.entered) prev
             | _ -> ());
             (ok, idx))
           items))

let logged_events_emitted_once =
  QCheck.Test.make ~name:"every input event is fired or skipped exactly once"
    ~count:200
    QCheck.(small_list (pair (int_range 1 3) (int_range 0 5)))
    (fun raw ->
      let all_labels = [| "e1"; "e2"; "e3"; "e4"; "e5"; "e6" |] in
      let events = List.map (fun (n, l) -> (n, all_labels.(l), None)) raw in
      let items, stats =
        engine_run (config ~prerequisites:cascade_prereqs) ~events
      in
      let logged =
        List.length
          (List.filter (fun (i : (string, unit) Engine.item) -> not i.inferred) items)
      in
      logged = stats.emitted_logged
      && stats.emitted_logged + stats.skipped = List.length events)

let () =
  Alcotest.run "refill-engine"
    [
      ( "fig3",
        [
          Alcotest.test_case "(a) cascade, full logs" `Quick fig3a_full_logs;
          Alcotest.test_case "(a) cascade, only e2" `Quick fig3a_only_e2;
          Alcotest.test_case "(b) 1-to-many" `Quick fig3b_one_to_many;
          Alcotest.test_case "(c) many-to-1" `Quick fig3c_many_to_one;
          Alcotest.test_case "(d) mixed" `Quick fig3d_mixed;
          Alcotest.test_case "(a) merge-order insensitive" `Quick
            fig3a_insensitive_to_merge_order;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "skips unfireable" `Quick unfireable_events_skipped;
          Alcotest.test_case "intra inferred prefix" `Quick
            intra_fires_with_inferred_prefix;
          Alcotest.test_case "historical prerequisite" `Quick
            historical_prerequisite;
          Alcotest.test_case "cycle terminates" `Quick
            prerequisite_cycle_terminates;
          Alcotest.test_case "unsatisfiable prerequisite" `Quick
            unsatisfiable_prerequisite_ignored;
          Alcotest.test_case "payload synthesis" `Quick payload_synthesis_called;
          Alcotest.test_case "stats match obs counters" `Quick
            stats_match_obs_counters;
          Alcotest.test_case "intra counter: taken transitions only" `Quick
            intra_counter_counts_only_taken_transitions;
          QCheck_alcotest.to_alcotest logged_events_emitted_once;
          QCheck_alcotest.to_alcotest prerequisites_precede_in_flow;
          QCheck_alcotest.to_alcotest interleaving_invariance_on_projections;
          QCheck_alcotest.to_alcotest interleaving_preserves_lossless_output;
        ] );
    ]

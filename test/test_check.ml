(* Tests for Refill_check: the six pass families each get at least one
   positive (clean) and one negative (diagnosed) case, the built-in models
   must report exactly their known findings, and qcheck properties pin that
   randomly generated well-formed FSMs pass while seeded mutations produce
   the expected diagnostic codes. *)

open Refill_check
module Fsm = Refill.Fsm
module P = Refill.Protocol

let codes diags = List.map (fun (d : Diagnostic.t) -> d.code) diags

let has_code c diags = List.mem c (codes diags)

let errors = Check.error_count

let warnings diags = Diagnostic.count Diagnostic.Warning diags

(* A minimal single-role model around an FSM: total classifier, no
   prerequisites — the neutral harness for the per-pass tests. *)
let model_of ?(name = "m") ?(entry_states = [ 0 ])
    ?(frontier_cause = fun s -> Some ("s" ^ string_of_int s))
    ?(prerequisites = fun ~role:_ _ -> []) roles =
  {
    Model.name;
    label_name = Fun.id;
    roles =
      List.map
        (fun (role, fsm) ->
          {
            Model.role;
            fsm;
            state_name = (fun s -> "s" ^ string_of_int s);
            entry_states;
            frontier_cause;
          })
        roles;
    prerequisites;
  }

let chain labels =
  let n = List.length labels + 1 in
  let f = Fsm.create ~n_states:n ~initial:0 in
  List.iteri (fun i l -> Fsm.add_transition f ~src:i ~dst:(i + 1) l) labels;
  f

(* -- Pass 1: well-formedness ------------------------------------------------ *)

let wf_clean () =
  let m = model_of [ ("r", chain [ "a"; "b" ]) ] in
  let diags = Check.well_formedness m in
  Alcotest.(check int) "no errors" 0 (errors diags);
  Alcotest.(check int) "no warnings" 0 (warnings diags)

let wf_orphan_state () =
  let f = chain [ "a"; "b" ] in
  (* State 3 exists only as the source of an edge: unreachable but wired. *)
  let f' = Fsm.create ~n_states:4 ~initial:0 in
  List.iter
    (fun (s, d, l) -> Fsm.add_transition f' ~src:s ~dst:d l)
    (Fsm.transitions f);
  Fsm.add_transition f' ~src:3 ~dst:1 "z";
  let diags = Check.well_formedness (model_of [ ("r", f') ]) in
  Alcotest.(check bool) "FSM001" true (has_code "FSM001" diags)

let wf_dead_end_no_cause () =
  let m =
    model_of
      ~frontier_cause:(fun s -> if s = 2 then None else Some "ok")
      [ ("r", chain [ "a"; "b" ]) ]
  in
  let diags = Check.well_formedness m in
  Alcotest.(check bool) "FSM002" true (has_code "FSM002" diags)

let wf_label_never_fires () =
  let f = Fsm.create ~n_states:4 ~initial:0 in
  Fsm.add_transition f ~src:0 ~dst:1 "a";
  (* "z" only fires from state 2, which nothing reaches. *)
  Fsm.add_transition f ~src:2 ~dst:3 "z";
  Fsm.add_transition f ~src:3 ~dst:2 "y";
  let diags = Check.well_formedness (model_of [ ("r", f) ]) in
  Alcotest.(check bool) "FSM003" true (has_code "FSM003" diags);
  Alcotest.(check bool) "FSM001 too" true (has_code "FSM001" diags)

let wf_nondeterministic () =
  let f = Fsm.create ~n_states:3 ~initial:0 in
  Fsm.add_transition f ~src:0 ~dst:1 "a";
  Fsm.add_transition f ~src:0 ~dst:2 "a";
  let diags = Check.well_formedness (model_of [ ("r", f) ]) in
  Alcotest.(check bool) "FSM004" true (has_code "FSM004" diags)

(* -- Pass 2: intra audit ---------------------------------------------------- *)

let intra_clean_chain () =
  let diags = Check.intra_audit (model_of [ ("r", chain [ "a"; "b"; "c" ]) ]) in
  (* Every skip-able label has a unique reachable target on a chain: no
     ambiguity, and only backwards labels are blind. *)
  Alcotest.(check bool) "no INT001" false (has_code "INT001" diags);
  Alcotest.(check bool) "summary present" true (has_code "INT000" diags)

let intra_ambiguous () =
  (* From 0, label "x" reaches two distinct targets and no normal edge:
     §IV.B's uniqueness fails, the event would be skipped. *)
  let f = Fsm.create ~n_states:5 ~initial:0 in
  Fsm.add_transition f ~src:0 ~dst:1 "a";
  Fsm.add_transition f ~src:0 ~dst:2 "b";
  Fsm.add_transition f ~src:1 ~dst:3 "x";
  Fsm.add_transition f ~src:2 ~dst:4 "x";
  let diags = Check.intra_audit (model_of [ ("r", f) ]) in
  Alcotest.(check bool) "INT001" true (has_code "INT001" diags)

let intra_blind_spot () =
  (* A terminal state can replay nothing: every label is blind there. *)
  let diags = Check.intra_audit (model_of [ ("r", chain [ "a" ]) ]) in
  Alcotest.(check bool) "INT002 at terminal" true (has_code "INT002" diags)

(* -- Pass 3: prerequisite graph --------------------------------------------- *)

let two_role_model ?(b = chain [ "p"; "q" ]) ~target () =
  model_of
    ~prerequisites:(fun ~role label ->
      if role = "a" && label = "b" then [ ("b", target) ] else [])
    [ ("a", chain [ "a"; "b" ]); ("b", b) ]

let prereq_clean () =
  let diags = Check.prereq_graph (two_role_model ~target:2 ()) in
  Alcotest.(check int) "no errors" 0 (errors diags);
  Alcotest.(check bool) "acyclic: no PRE004" false (has_code "PRE004" diags)

let prereq_unreachable_target () =
  (* Delete the edge into the prerequisite state: b's chain stops at 1. *)
  let b = Fsm.create ~n_states:3 ~initial:0 in
  Fsm.add_transition b ~src:0 ~dst:1 "p";
  let diags = Check.prereq_graph (two_role_model ~b ~target:2 ()) in
  Alcotest.(check bool) "PRE001" true (has_code "PRE001" diags);
  Alcotest.(check bool) "is an error" true (errors diags > 0)

let prereq_unknown_role () =
  let m =
    model_of
      ~prerequisites:(fun ~role:_ label ->
        if label = "a" then [ ("ghost", 0) ] else [])
      [ ("a", chain [ "a" ]) ]
  in
  Alcotest.(check bool) "PRE002" true
    (has_code "PRE002" (Check.prereq_graph m))

let prereq_out_of_range () =
  let diags = Check.prereq_graph (two_role_model ~target:99 ()) in
  Alcotest.(check bool) "PRE003" true (has_code "PRE003" diags)

let prereq_cycle () =
  let m =
    model_of
      ~prerequisites:(fun ~role label ->
        match (role, label) with
        | "a", "a" -> [ ("b", 1) ]
        | "b", "p" -> [ ("a", 1) ]
        | _ -> [])
      [ ("a", chain [ "a" ]); ("b", chain [ "p" ]) ]
  in
  let diags = Check.prereq_graph m in
  Alcotest.(check bool) "PRE004" true (has_code "PRE004" diags);
  (* Cycles are a property of the engine's runtime guard, not a defect. *)
  Alcotest.(check int) "info only" 0 (errors diags)

(* -- Pass 4: classification totality ---------------------------------------- *)

let class_total () =
  let diags = Check.classification (model_of [ ("r", chain [ "a"; "b" ]) ]) in
  Alcotest.(check int) "no gaps" 0 (errors diags);
  Alcotest.(check bool) "summary" true (has_code "CLS000" diags)

let class_gap () =
  let m =
    model_of ~entry_states:[ 1 ]
      ~frontier_cause:(fun s -> if s = 2 then None else Some "ok")
      [ ("r", chain [ "a"; "b" ]) ]
  in
  let diags = Check.classification m in
  Alcotest.(check bool) "CLS001" true (has_code "CLS001" diags);
  Alcotest.(check bool) "is an error" true (errors diags > 0)

let class_gap_outside_frontier_ok () =
  (* The gap state exists but is not reachable from the entry: no error. *)
  let m =
    model_of ~entry_states:[ 2 ]
      ~frontier_cause:(fun s -> if s = 0 then None else Some "ok")
      [ ("r", chain [ "a"; "b" ]) ]
  in
  Alcotest.(check int) "no errors" 0 (errors (Check.classification m))

(* -- Pass 5: loss radius ----------------------------------------------------- *)

(* 0 -u-> 1 -w-> 3 -z-> 4 with a second branch 0 -v-> 2 -w-> 3: from 0,
   a single lost record leaves "w" two completions (via u or via v), and a
   two-record burst does the same to "z"; from 1 or 2 every completion is
   unique at any loss. *)
let diamond () =
  let f = Fsm.create ~n_states:5 ~initial:0 in
  Fsm.add_transition f ~src:0 ~dst:1 "u";
  Fsm.add_transition f ~src:0 ~dst:2 "v";
  Fsm.add_transition f ~src:1 ~dst:3 "w";
  Fsm.add_transition f ~src:2 ~dst:3 "w";
  Fsm.add_transition f ~src:3 ~dst:4 "z";
  f

let loss_radius_values () =
  let f = diamond () in
  Alcotest.(check (option int)) "k=1 at (0,w)" (Some 1)
    (Loss.radius f ~from:0 "w");
  Alcotest.(check (option int)) "k=2 at (0,z)" (Some 2)
    (Loss.radius f ~from:0 "z");
  Alcotest.(check (option int)) "safe at (1,z)" None
    (Loss.radius f ~from:1 "z");
  Alcotest.(check (option int)) "safe at (2,z)" None
    (Loss.radius f ~from:2 "z")

let loss_witnesses_distinct () =
  let f = diamond () in
  let ws = Loss.completions f ~from:0 "w" ~max_losses:1 ~max_count:2 in
  Alcotest.(check int) "two witnesses" 2 (List.length ws);
  Alcotest.(check bool) "distinct" true (List.nth ws 0 <> List.nth ws 1);
  List.iter
    (fun w ->
      let _, _, l = List.nth w (List.length w - 1) in
      Alcotest.(check string) "ends with observed label" "w" l)
    ws

let loss_radius_terminates_on_cycles () =
  (* A cycle unrelated to the site must not loop the analysis: the capped
     count vector repeats with an unchanged total, which is the infinite-
     radius certificate. *)
  let f = Fsm.create ~n_states:3 ~initial:0 in
  Fsm.add_transition f ~src:0 ~dst:1 "a";
  Fsm.add_transition f ~src:1 ~dst:2 "l";
  Fsm.add_transition f ~src:2 ~dst:2 "c";
  Alcotest.(check (option int)) "safe" None (Loss.radius f ~from:0 "l");
  (* A cycle feeding the site's label does open completions eventually. *)
  let g = Fsm.create ~n_states:3 ~initial:0 in
  Fsm.add_transition g ~src:0 ~dst:1 "a";
  Fsm.add_transition g ~src:1 ~dst:0 "b";
  Fsm.add_transition g ~src:1 ~dst:2 "l";
  Alcotest.(check (option int)) "k=3 via the cycle" (Some 3)
    (Loss.radius g ~from:0 "l")

let loss_pass_codes () =
  let diags = Check.loss_radius (model_of [ ("r", diamond ()) ]) in
  Alcotest.(check int) "one LOSS001" 1
    (List.length (Diagnostic.by_code "LOSS001" diags));
  Alcotest.(check int) "one LOSS002" 1
    (List.length (Diagnostic.by_code "LOSS002" diags));
  Alcotest.(check bool) "summary" true (has_code "LOSS000" diags);
  (match Diagnostic.by_code "LOSS002" diags with
  | [ d ] -> Alcotest.(check (list (pair string int))) "k payload" [ ("k", 2) ] d.data
  | _ -> Alcotest.fail "expected exactly one LOSS002");
  let clean = Check.loss_radius (model_of [ ("r", chain [ "a"; "b"; "c" ]) ]) in
  Alcotest.(check int) "chain has no loss findings" 0 (warnings clean + errors clean)

(* -- Pass 6: product-automaton ambiguity ------------------------------------- *)

(* 0 -l-> 1 and 0 -a-> 2 -l-> 3: losing "a" makes the two l-paths project
   identically, so belief states 1 and 3 are confusable.  With the extra
   3 -d-> 4 edge the observation "d" tells them apart. *)
let split ?(dedge = false) () =
  let f = Fsm.create ~n_states:5 ~initial:0 in
  Fsm.add_transition f ~src:0 ~dst:1 "l";
  Fsm.add_transition f ~src:0 ~dst:2 "a";
  Fsm.add_transition f ~src:2 ~dst:3 "l";
  if dedge then Fsm.add_transition f ~src:3 ~dst:4 "d";
  f

let product_pair_equivalent () =
  match Product.confusable_pairs (split ()) with
  | [ p ] ->
      Alcotest.(check (pair int int)) "pair" (1, 3) (p.left, p.right);
      Alcotest.(check int) "seeded at 0" 0 p.seed_state;
      Alcotest.(check bool) "no distinguisher" true (p.distinguisher = None)
  | ps -> Alcotest.failf "expected one pair, got %d" (List.length ps)

let product_pair_distinguishable () =
  match Product.confusable_pairs (split ~dedge:true ()) with
  | [ p ] ->
      Alcotest.(check (option (list string))) "minimal distinguisher"
        (Some [ "d" ]) p.distinguisher
  | ps -> Alcotest.failf "expected one pair, got %d" (List.length ps)

let product_diamond_on_normal_edge () =
  (* The l-edge from 0 is normal, but one lost "a" opens the longer l-path:
     the engine silently prefers the normal edge. *)
  match Product.diamonds (split ()) with
  | [ d ] ->
      Alcotest.(check int) "at state 0" 0 d.d_state;
      Alcotest.(check string) "on l" "l" d.d_label;
      Alcotest.(check int) "k=1" 1 d.d_radius;
      Alcotest.(check int) "two witnesses" 2 (List.length d.d_witnesses)
  | ds -> Alcotest.failf "expected one diamond, got %d" (List.length ds)

let product_pass_codes () =
  let d_equiv = Check.product_ambiguity (model_of [ ("r", split ()) ]) in
  Alcotest.(check bool) "AMB002" true (has_code "AMB002" d_equiv);
  Alcotest.(check bool) "no AMB001" false (has_code "AMB001" d_equiv);
  let d_dist = Check.product_ambiguity (model_of [ ("r", split ~dedge:true ()) ]) in
  Alcotest.(check bool) "AMB001" true (has_code "AMB001" d_dist);
  Alcotest.(check bool) "summary" true (has_code "AMB000" d_dist);
  let clean = Check.product_ambiguity (model_of [ ("r", chain [ "a"; "b" ]) ]) in
  Alcotest.(check int) "chain silent" 0 (warnings clean + errors clean)

let product_prereq_alternatives () =
  let m =
    model_of
      ~prerequisites:(fun ~role label ->
        if role = "a" && label = "b" then [ ("b", 1); ("b", 2) ] else [])
      [ ("a", chain [ "a"; "b" ]); ("b", chain [ "p"; "q" ]) ]
  in
  let diags = Check.product_ambiguity m in
  (match Diagnostic.by_code "AMB003" diags with
  | [ d ] ->
      Alcotest.(check (list (pair string int)))
        "alternatives payload" [ ("alternatives", 2) ] d.data
  | _ -> Alcotest.fail "expected exactly one AMB003");
  (* An unsatisfiable alternative does not count towards the ambiguity. *)
  let m1 =
    model_of
      ~prerequisites:(fun ~role label ->
        if role = "a" && label = "b" then [ ("b", 1); ("b", 99) ] else [])
      [ ("a", chain [ "a"; "b" ]); ("b", chain [ "p"; "q" ]) ]
  in
  Alcotest.(check bool) "single satisfiable alternative is fine" false
    (has_code "AMB003" (Check.product_ambiguity m1))

(* -- Built-in models -------------------------------------------------------- *)

(* CTP is clean under the first four pass families; the loss passes
   correctly find the paper's Table-II ambiguities, the sharpest being
   (sent, recv): a single lost ack or timeout both complete to holding. *)
let builtin_ctp_expected () =
  let diags = Check.run Builtin.ctp in
  let old_families =
    List.filter
      (fun (d : Diagnostic.t) ->
        not
          (List.exists
             (fun p -> String.length d.code >= String.length p
                       && String.sub d.code 0 (String.length p) = p)
             [ "LOSS"; "AMB" ]))
      diags
  in
  Alcotest.(check int) "first four families: no errors" 0 (errors old_families);
  Alcotest.(check int) "first four families: no warnings" 0
    (warnings old_families);
  (* The role-level recv->sent / ack->holding loop is real and reported. *)
  Alcotest.(check bool) "cycle noted" true (has_code "PRE004" diags);
  (match Diagnostic.by_code "LOSS001" diags with
  | [ a; b ] ->
      List.iter
        (fun (d : Diagnostic.t) ->
          Alcotest.(check (option string)) "at sent" (Some "sent") d.loc.state;
          Alcotest.(check (option string)) "on recv" (Some "recv") d.loc.label;
          Alcotest.(check (list (pair string int))) "k=1" [ ("k", 1) ] d.data)
        [ a; b ];
      Alcotest.(check (list (option string)))
        "origin and forwarder"
        [ Some "forwarder"; Some "origin" ]
        [ a.loc.role; b.loc.role ]
  | l -> Alcotest.failf "expected exactly two LOSS001, got %d" (List.length l));
  Alcotest.(check int) "errors are exactly the LOSS001 pair" 2 (errors diags);
  Alcotest.(check bool) "finite radii reported" true (has_code "LOSS002" diags);
  Alcotest.(check bool) "recv sender ambiguous" true (has_code "AMB003" diags)

let builtin_dissem_expected () =
  let diags = Check.run Builtin.dissem in
  Alcotest.(check int) "no errors" 0 (errors diags);
  List.iter
    (fun (d : Diagnostic.t) ->
      if d.severity = Diagnostic.Warning then
        Alcotest.(check bool)
          ("warning is a loss/ambiguity finding: " ^ d.code)
          true
          (List.mem d.code [ "LOSS002"; "AMB001"; "AMB002" ]))
    diags;
  (* The rx_adv self-loops make later receiver states confusable with
     earlier ones, but a surviving req/done record tells them apart. *)
  Alcotest.(check bool) "AMB001" true (has_code "AMB001" diags);
  Alcotest.(check bool) "AMB002" true (has_code "AMB002" diags);
  Alcotest.(check bool) "LOSS002" true (has_code "LOSS002" diags);
  Alcotest.(check bool) "no single-drop site" false (has_code "LOSS001" diags)

let builtin_broken_fires () =
  let diags = Check.run Builtin.broken in
  List.iter
    (fun c ->
      Alcotest.(check bool) ("has " ^ c) true (has_code c diags))
    [
      "FSM001"; "FSM002"; "FSM004"; "INT001"; "PRE001"; "CLS001"; "LOSS001";
      "LOSS002"; "AMB001";
    ];
  Alcotest.(check bool) "nonzero errors" true (errors diags > 0)

(* The expected-diagnostics fixture: broken-demo's known ambiguity sites,
   pinned to exact codes, locations, and k values.  A diagnostic drifting
   here means the analysis changed, not the model. *)
let broken_expected_sites () =
  let diags = Check.run Builtin.broken in
  (match Diagnostic.by_code "LOSS001" diags with
  | [ d ] ->
      Alcotest.(check (option string)) "role c" (Some "c") d.loc.role;
      Alcotest.(check (option string)) "state s0" (Some "s0") d.loc.state;
      Alcotest.(check (option string)) "label w" (Some "w") d.loc.label;
      Alcotest.(check (list (pair string int))) "k=1" [ ("k", 1) ] d.data
  | l -> Alcotest.failf "expected one LOSS001, got %d" (List.length l));
  (match Diagnostic.by_code "LOSS002" diags with
  | [ d ] ->
      Alcotest.(check (option string)) "role c" (Some "c") d.loc.role;
      Alcotest.(check (option string)) "state s0" (Some "s0") d.loc.state;
      Alcotest.(check (option string)) "label z" (Some "z") d.loc.label;
      Alcotest.(check (list (pair string int))) "k=2" [ ("k", 2) ] d.data
  | l -> Alcotest.failf "expected one LOSS002, got %d" (List.length l));
  (match Diagnostic.by_code "AMB001" diags with
  | [ d ] ->
      Alcotest.(check (option string)) "role a" (Some "a") d.loc.role;
      Alcotest.(check (option string)) "pair s1|s2" (Some "s1|s2") d.loc.state
  | l -> Alcotest.failf "expected one AMB001, got %d" (List.length l));
  (* The two safe sites of role c stay out of the report (summary only). *)
  let c_summaries =
    List.filter
      (fun (d : Diagnostic.t) ->
        d.code = "LOSS000" && d.loc.role = Some "c")
      diags
  in
  match c_summaries with
  | [ d ] ->
      Alcotest.(check bool) "2 safe sites counted" true
        (let msg = d.message in
         let n = String.length msg in
         let needle = "2 safe" in
         let ln = String.length needle in
         let rec scan i = i + ln <= n && (String.sub msg i ln = needle || scan (i + 1)) in
         scan 0)
  | _ -> Alcotest.fail "expected one LOSS000 for role c"

let run_is_sorted () =
  let sorted name diags =
    Alcotest.(check bool)
      (name ^ " sorted by (code, location)")
      true
      (List.stable_sort Diagnostic.compare_diag diags = diags)
  in
  sorted "ctp" (Check.run Builtin.ctp);
  sorted "dissem" (Check.run Builtin.dissem);
  sorted "broken-demo" (Check.run Builtin.broken)

let registry () =
  Alcotest.(check (list string))
    "defaults" [ "ctp"; "dissem" ] Builtin.default_names;
  Alcotest.(check bool) "broken-demo known" true
    (List.mem "broken-demo" Builtin.names);
  Alcotest.(check bool) "unknown rejected" true (Builtin.run_model "nope" = None);
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " has dots") true
        (Builtin.dots name <> []))
    Builtin.names

(* The CTP model's static frontier_cause must agree with the live
   classifier: for every frontier state the model claims is classified,
   a flow ending there must get a non-Unknown verdict. *)
let ctp_frontier_matches_classify () =
  let item ?(inferred = false) label entered : Refill.Flow.item =
    { node = 1; label; payload = None; inferred; entered }
  in
  let flow items : Refill.Flow.t =
    {
      origin = 1;
      seq = 0;
      items;
      stats = { emitted_logged = 0; emitted_inferred = 0; skipped = 0 };
      prov = [||];
    }
  in
  let cases =
    [
      (P.holding, [ item P.L_recv P.holding ]);
      (P.sent, [ item P.L_recv P.holding; item P.L_trans P.sent ]);
      ( P.acked,
        [
          item P.L_recv P.holding; item P.L_trans P.sent; item P.L_ack P.acked;
        ] );
      ( P.timed_out,
        [
          item P.L_recv P.holding;
          item P.L_trans P.sent;
          item P.L_timeout P.timed_out;
        ] );
      ( P.dup_dropped,
        [ item P.L_recv P.holding; item ~inferred:true P.L_dup P.dup_dropped ]
      );
      (P.overflow_dropped, [ item P.L_overflow P.overflow_dropped ]);
      (P.delivered, [ item P.L_recv P.holding; item P.L_deliver P.delivered ]);
    ]
  in
  let ctp_cause =
    (List.hd Builtin.ctp.Model.roles).Model.frontier_cause
  in
  List.iter
    (fun (state, items) ->
      let v = Refill.Classify.classify (flow items) in
      Alcotest.(check bool)
        (Printf.sprintf "state %s classified both ways" (P.state_name state))
        true
        (ctp_cause state <> None
        && not (Logsys.Cause.equal v.cause Logsys.Cause.Unknown)))
    cases

(* -- Report formats --------------------------------------------------------- *)

let json_report_roundtrips () =
  let results = [ ("broken-demo", Check.run Builtin.broken) ] in
  let doc = Refill_obs.Json.to_string (Check.to_json results) in
  match Refill_obs.Json.parse doc with
  | Error e -> Alcotest.failf "unparseable report: %s" e
  | Ok j ->
      let module J = Refill_obs.Json in
      (match J.member "format" j with
      | Some (J.Str "refill-check-v1") -> ()
      | _ -> Alcotest.fail "missing or wrong format field");
      (match J.member "errors" j with
      | Some (J.Num n) ->
          Alcotest.(check bool) "errors > 0" true (n > 0.)
      | _ -> Alcotest.fail "no errors field");
      (match J.member "models" j with
      | Some (J.Arr [ m ]) -> (
          match J.member "name" m with
          | Some (J.Str "broken-demo") -> ()
          | _ -> Alcotest.fail "model name")
      | _ -> Alcotest.fail "models array")

let text_report_mentions_codes () =
  let txt = Check.to_text [ ("broken-demo", Check.run Builtin.broken) ] in
  List.iter
    (fun needle ->
      let contains =
        let n = String.length needle and h = String.length txt in
        let rec scan i =
          i + n <= h && (String.sub txt i n = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) ("mentions " ^ needle) true contains)
    [ "PRE001"; "CLS001"; "error(s)" ]

(* -- qcheck: generated well-formed FSMs and seeded mutations ---------------- *)

(* Arborescence rooted at 0 with one globally unique label per edge: every
   state reachable, deterministic, unambiguous — well-formed by
   construction. *)
let arborescence parents =
  let n = List.length parents + 1 in
  let f = Fsm.create ~n_states:n ~initial:0 in
  List.iteri
    (fun i p ->
      let child = i + 1 in
      Fsm.add_transition f ~src:(p mod child) ~dst:child
        ("l" ^ string_of_int child))
    parents;
  f

let parents_gen = QCheck.(list_of_size (Gen.int_range 1 7) (int_range 0 1000))

let wellformed_pass_clean =
  QCheck.Test.make ~name:"well-formed FSMs check clean" ~count:200 parents_gen
    (fun parents ->
      let diags = Check.run (model_of [ ("r", arborescence parents) ]) in
      errors diags = 0 && warnings diags = 0
      (* In particular the loss/ambiguity passes stay silent: every
         completion in an arborescence with unique labels is unique. *)
      && List.for_all
           (fun c -> not (has_code c diags))
           [ "LOSS001"; "LOSS002"; "AMB001"; "AMB002"; "AMB003" ])

let mutation_orphan =
  QCheck.Test.make ~name:"orphaned state => FSM001" ~count:100 parents_gen
    (fun parents ->
      let f = arborescence parents in
      let n = Fsm.n_states f in
      (* Re-number into a bigger graph leaving a state with an out-edge but
         no path from the initial state. *)
      let f' = Fsm.create ~n_states:(n + 1) ~initial:0 in
      List.iter
        (fun (s, d, l) -> Fsm.add_transition f' ~src:s ~dst:d l)
        (Fsm.transitions f);
      Fsm.add_transition f' ~src:n ~dst:0 "orphan-edge";
      has_code "FSM001" (Check.run (model_of [ ("r", f') ])))

let mutation_duplicate_edge =
  QCheck.Test.make ~name:"duplicate (src,label) => FSM004" ~count:100
    parents_gen (fun parents ->
      let f = arborescence parents in
      match Fsm.transitions f with
      | [] -> QCheck.assume_fail ()
      | (src, dst, label) :: _ ->
          let other = if dst = 0 then 1 else 0 in
          Fsm.add_transition f ~src ~dst:other label;
          has_code "FSM004" (Check.run (model_of [ ("r", f) ])))

let mutation_shortcut_diamond =
  QCheck.Test.make ~name:"seeded shortcutable diamond => LOSS001" ~count:100
    parents_gen (fun parents ->
      let f = arborescence parents in
      let n = Fsm.n_states f in
      (* Graft a diamond onto the root: two fresh branches that join on a
         fresh label — from the root, one lost record leaves the join label
         two completions. *)
      let f' = Fsm.create ~n_states:(n + 3) ~initial:0 in
      List.iter
        (fun (s, d, l) -> Fsm.add_transition f' ~src:s ~dst:d l)
        (Fsm.transitions f);
      Fsm.add_transition f' ~src:0 ~dst:n "dia-left";
      Fsm.add_transition f' ~src:0 ~dst:(n + 1) "dia-right";
      Fsm.add_transition f' ~src:n ~dst:(n + 2) "dia-join";
      Fsm.add_transition f' ~src:(n + 1) ~dst:(n + 2) "dia-join";
      let diags = Check.run (model_of [ ("r", f') ]) in
      List.exists
        (fun (d : Diagnostic.t) ->
          d.code = "LOSS001" && d.loc.label = Some "dia-join"
          && d.data = [ ("k", 1) ])
        diags)

let mutation_duplicate_projection =
  QCheck.Test.make ~name:"seeded duplicate-projection edge => AMB002"
    ~count:100 parents_gen (fun parents ->
      let f = arborescence parents in
      match Fsm.transitions f with
      | [] -> QCheck.assume_fail ()
      | (src, dst, label) :: _ ->
          (* A self-loop re-using the tree edge's label: the paths src->dst
             and src->dst->dst project identically once the loop record is
             lost, a diamond through the normal edge. *)
          Fsm.add_transition f ~src:dst ~dst label;
          let diags = Check.run (model_of [ ("r", f) ]) in
          List.exists
            (fun (d : Diagnostic.t) ->
              d.code = "AMB002"
              && d.loc.state = Some ("s" ^ string_of_int src)
              && d.loc.label = Some label)
            diags)

let mutation_cut_prereq =
  QCheck.Test.make ~name:"deleting the edge into a prereq state => PRE001"
    ~count:100 parents_gen (fun parents ->
      let n = List.length parents + 1 in
      if n < 2 then QCheck.assume_fail ()
      else begin
        (* Remote role: the arborescence *without* the single edge into its
           last state — that state is the prerequisite target. *)
        let full = arborescence parents in
        let cut = Fsm.create ~n_states:n ~initial:0 in
        List.iter
          (fun (s, d, l) ->
            if d <> n - 1 then Fsm.add_transition cut ~src:s ~dst:d l)
          (Fsm.transitions full);
        let m =
          model_of
            ~prerequisites:(fun ~role label ->
              if role = "a" && label = "go" then [ ("b", n - 1) ] else [])
            [ ("a", chain [ "go" ]); ("b", cut) ]
        in
        has_code "PRE001" (Check.prereq_graph m)
      end)

let () =
  Alcotest.run "refill-check"
    [
      ( "well-formedness",
        [
          Alcotest.test_case "clean chain" `Quick wf_clean;
          Alcotest.test_case "orphan state" `Quick wf_orphan_state;
          Alcotest.test_case "dead end w/o cause" `Quick wf_dead_end_no_cause;
          Alcotest.test_case "label never fires" `Quick wf_label_never_fires;
          Alcotest.test_case "nondeterministic pair" `Quick wf_nondeterministic;
        ] );
      ( "intra-audit",
        [
          Alcotest.test_case "clean chain" `Quick intra_clean_chain;
          Alcotest.test_case "ambiguous targets" `Quick intra_ambiguous;
          Alcotest.test_case "blind spot" `Quick intra_blind_spot;
        ] );
      ( "prereq-graph",
        [
          Alcotest.test_case "satisfiable" `Quick prereq_clean;
          Alcotest.test_case "unreachable target" `Quick
            prereq_unreachable_target;
          Alcotest.test_case "unknown role" `Quick prereq_unknown_role;
          Alcotest.test_case "out of range" `Quick prereq_out_of_range;
          Alcotest.test_case "cycle is info" `Quick prereq_cycle;
        ] );
      ( "classification",
        [
          Alcotest.test_case "total" `Quick class_total;
          Alcotest.test_case "gap" `Quick class_gap;
          Alcotest.test_case "gap outside frontier" `Quick
            class_gap_outside_frontier_ok;
        ] );
      ( "loss-radius",
        [
          Alcotest.test_case "radius values" `Quick loss_radius_values;
          Alcotest.test_case "distinct witnesses" `Quick
            loss_witnesses_distinct;
          Alcotest.test_case "terminates on cycles" `Quick
            loss_radius_terminates_on_cycles;
          Alcotest.test_case "pass codes" `Quick loss_pass_codes;
        ] );
      ( "product",
        [
          Alcotest.test_case "equivalent pair" `Quick product_pair_equivalent;
          Alcotest.test_case "distinguishable pair" `Quick
            product_pair_distinguishable;
          Alcotest.test_case "diamond on normal edge" `Quick
            product_diamond_on_normal_edge;
          Alcotest.test_case "pass codes" `Quick product_pass_codes;
          Alcotest.test_case "prereq alternatives" `Quick
            product_prereq_alternatives;
        ] );
      ( "builtins",
        [
          Alcotest.test_case "ctp expected findings" `Quick
            builtin_ctp_expected;
          Alcotest.test_case "dissem expected findings" `Quick
            builtin_dissem_expected;
          Alcotest.test_case "broken fixture fires" `Quick
            builtin_broken_fires;
          Alcotest.test_case "broken expected sites" `Quick
            broken_expected_sites;
          Alcotest.test_case "reports are sorted" `Quick run_is_sorted;
          Alcotest.test_case "registry" `Quick registry;
          Alcotest.test_case "ctp causes match Classify" `Quick
            ctp_frontier_matches_classify;
        ] );
      ( "reports",
        [
          Alcotest.test_case "json" `Quick json_report_roundtrips;
          Alcotest.test_case "text" `Quick text_report_mentions_codes;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest wellformed_pass_clean;
          QCheck_alcotest.to_alcotest mutation_orphan;
          QCheck_alcotest.to_alcotest mutation_duplicate_edge;
          QCheck_alcotest.to_alcotest mutation_shortcut_diamond;
          QCheck_alcotest.to_alcotest mutation_duplicate_projection;
          QCheck_alcotest.to_alcotest mutation_cut_prereq;
        ] );
    ]

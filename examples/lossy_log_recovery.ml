(* How much log can REFILL lose and still reconstruct the story?

   Takes one real multihop packet from a simulation, then destroys ever
   larger portions of the network's logs and shows what the reconstruction
   still recovers — the event flow shrinks gracefully from "fully logged"
   to "almost fully inferred", while the naive analyzer falls over
   immediately.

   Run with: dune exec examples/lossy_log_recovery.exe
*)

let find_long_delivered truth =
  Logsys.Truth.fold truth ~init:None ~f:(fun acc key (fate : Logsys.Truth.fate) ->
      let len = List.length fate.path in
      match (acc, fate.cause) with
      | Some (_, best), Logsys.Cause.Delivered when len <= best -> acc
      | _, Logsys.Cause.Delivered -> Some (key, len)
      | _ -> acc)

let () =
  let scenario = Scenario.Citysee.run Scenario.Citysee.tiny in
  let truth = Node.Network.truth scenario.network in
  let collected = Scenario.Citysee.collected scenario in
  let (origin, seq), hops =
    match find_long_delivered truth with
    | Some (key, len) -> (key, len)
    | None -> failwith "no delivered packet found"
  in
  Printf.printf "chosen packet: origin %d, seq %d (%d-hop delivery)\n\n"
    origin seq hops;

  let show_at loss_rate =
    let rng = Prelude.Rng.create ~seed:31337L in
    let lossy =
      Logsys.Collected.lossify (Logsys.Loss_model.uniform loss_rate) rng
        collected
    in
    let flow =
      Refill.Reconstruct.packet lossy ~origin ~seq ~sink:scenario.sink
    in
    let verdict = Refill.Classify.classify flow in
    let naive =
      Baseline.Naive.classify lossy ~origin ~seq ~sink:scenario.sink
    in
    Printf.printf "-- %.0f%% of all log records destroyed --\n"
      (100. *. loss_rate);
    Printf.printf "flow  : %s\n" (Refill.Flow.to_string flow);
    Printf.printf
      "refill: %d logged + %d inferred events, path %s, verdict %s\n"
      (List.length (Refill.Flow.logged_items flow))
      (List.length (Refill.Flow.inferred_items flow))
      (String.concat "->"
         (List.map string_of_int (Refill.Flow.nodes_visited flow)))
      (Logsys.Cause.name verdict.cause);
    Printf.printf "naive : verdict %s\n\n" (Logsys.Cause.name naive.cause)
  in
  List.iter show_at [ 0.0; 0.3; 0.6; 0.8 ];

  (* The same packet with ONLY the final-hop ack surviving: the cascading
     inference of Fig. 3(a) in the wild. *)
  let all_records =
    Logsys.Collected.events_of_packet collected ~origin ~seq
    |> List.concat_map snd
  in
  let last_ack =
    List.rev all_records
    |> List.find_opt (fun (r : Logsys.Record.t) ->
           match r.kind with Logsys.Record.Ack_recvd _ -> true | _ -> false)
  in
  match last_ack with
  | None -> ()
  | Some ack ->
      let config =
        Refill.Protocol.make_config ~records:[ ack ] ~origin ~seq
          ~sink:scenario.sink
      in
      let acc = ref [] in
      let stats =
        Refill.Engine.process config
          (Refill.Engine.Events
             (Array.of_list (Refill.Protocol.events_of_records [ ack ])))
          ~emit:(fun it -> acc := it :: !acc)
      in
      let items = List.rev !acc in
      let flow = { Refill.Flow.origin; seq; items; stats; prov = [||] } in
      Printf.printf
        "-- everything destroyed except one ack record (%s) --\n"
        (Logsys.Record.to_string ack);
      Printf.printf "flow  : %s\n" (Refill.Flow.to_string flow);
      Printf.printf "%d events inferred from a single surviving record\n"
        stats.emitted_inferred

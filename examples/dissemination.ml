(* The inference engine on a second protocol: data dissemination.

   §IV.B's Fig. 3(b)/(d) patterns describe a broadcaster negotiating with
   many receivers.  This example exercises the dissemination model two
   ways — on synthetic rounds, and on the Dissem_sim substrate (a
   Deluge/Trickle-style simulator over the same lossy radio model) —
   reconstructing each receiver's exchange from the surviving records and
   comparing proven progress with ground truth.  The same generic FSM
   engine that powers the CTP reconstruction, instantiated for a different
   protocol in ~100 lines.

   Run with: dune exec examples/dissemination.exe
*)

let state_name = function
  | 0 -> "nothing"
  | 1 -> "heard advert"
  | 2 -> "requested"
  | 3 -> "received data"
  | 4 -> "DONE"
  | _ -> "?"

let () =
  let rng = Prelude.Rng.create ~seed:99L in
  let receivers = [ 1; 2; 3; 4; 5 ] in

  (* One round, moderately hostile conditions. *)
  let out =
    Refill.Dissem.generate rng ~broadcaster:0 ~receivers ~message_loss:0.25
      ~record_loss:0.3
  in
  Printf.printf "one round, 25%% message loss, 30%% record loss:\n";
  Printf.printf "  surviving records: %s\n"
    (String.concat ", "
       (List.map (Format.asprintf "%a" Refill.Dissem.pp_event) out.events));
  List.iter
    (fun (r, progress) ->
      let truth = List.assoc r out.completed in
      Printf.printf "  receiver %d: proven progress = %-13s (truth: %s)\n" r
        (state_name progress)
        (if truth then "completed" else "did not complete"))
    (Refill.Dissem.analyze_round ~broadcaster:0 ~events:out.events);

  (* The headline: a single surviving 'done' record implies the entire
     seven-event exchange. *)
  let items, stats =
    Refill.Dissem.reconstruct ~broadcaster:0 ~receiver:1
      ~events:[ { node = 1; label = Refill.Dissem.L_done; peer = None } ]
  in
  Printf.printf
    "\nfrom one surviving 'done' record, the engine infers %d events:\n  "
    stats.emitted_inferred;
  List.iter
    (fun (i : (Refill.Dissem.label, Refill.Dissem.event) Refill.Engine.item) ->
      Printf.printf "%s%s@%d%s "
        (if i.inferred then "[" else "")
        (Refill.Dissem.label_name i.label)
        i.node
        (if i.inferred then "]" else ""))
    items;
  print_newline ();

  (* The same analysis on the simulated substrate: a broadcaster and its
     one-hop neighborhood on a real link model, retries and
     re-advertisements included. *)
  let topo =
    Net.Topology.create
      ~positions:[| (0., 0.); (4., 0.); (0., 4.); (8., 8.); (12.5, 0.) |]
      ~range:15.
  in
  let link = Net.Link_model.create ~seed:17L ~topology:topo () in
  let result =
    Dissem_sim.Rounds.run rng ~topology:topo ~link ~broadcaster:0
      Dissem_sim.Rounds.default_config
  in
  Printf.printf
    "\nsimulated substrate: %d advertisement rounds, %d log events\n"
    result.advertisements
    (List.length (Dissem_sim.Rounds.merged_events result));
  let progress =
    Refill.Dissem.analyze_round ~broadcaster:0
      ~events:(Dissem_sim.Rounds.merged_events result)
  in
  List.iter
    (fun (r, truth) ->
      let proven =
        Option.value ~default:0 (List.assoc_opt r progress)
      in
      Printf.printf "  receiver %d: proven %-13s (truth: %s)\n" r
        (state_name proven)
        (if truth then "completed" else "did not complete"))
    result.completed;

  (* Multi-hop epidemic: holders become broadcasters, flooding the network;
     analyze_epidemic reconstructs every node's acquisition against its
     candidate sources. *)
  let grid_rng = Prelude.Rng.create ~seed:41L in
  let grid =
    Net.Topology.jittered_grid grid_rng ~nx:5 ~ny:5 ~spacing:10. ~jitter:2.
      ~range:16.
  in
  let grid_link = Net.Link_model.create ~seed:43L ~topology:grid () in
  let epidemic =
    Dissem_sim.Rounds.run_epidemic rng ~topology:grid ~link:grid_link ~seed:0
      { Dissem_sim.Rounds.default_config with duration = 400. }
  in
  let truth_done = List.length (List.filter snd epidemic.completed) in
  let proven_done =
    Refill.Dissem.analyze_epidemic ~seed:0
      ~events:(Dissem_sim.Rounds.merged_events epidemic)
    |> List.filter (fun (_, p) -> p = 4)
    |> List.length
  in
  Printf.printf
    "\nmulti-hop epidemic on a 25-node grid: %d/%d nodes acquired the data \
     (%d advertisements);\n\
     reconstruction proves exactly %d completions from the logs\n"
    truth_done
    (List.length epidemic.completed)
    epidemic.advertisements proven_done;

  (* Aggregate check over many rounds: reconstruction is sound (never
     proves a completion that did not happen) and increasingly complete as
     record loss falls. *)
  Printf.printf "\n%-12s  %-10s  %-10s\n" "record-loss" "proven%" "truth%";
  List.iter
    (fun record_loss ->
      let rounds = 200 in
      let proven = ref 0 and truly = ref 0 and total = ref 0 in
      for _ = 1 to rounds do
        let out =
          Refill.Dissem.generate rng ~broadcaster:0 ~receivers
            ~message_loss:0.15 ~record_loss
        in
        let progress =
          Refill.Dissem.analyze_round ~broadcaster:0 ~events:out.events
        in
        List.iter
          (fun (r, completed) ->
            incr total;
            if completed then incr truly;
            match List.assoc_opt r progress with
            | Some 4 -> incr proven
            | _ -> ())
          out.completed
      done;
      Printf.printf "%-12.2f  %-10.1f  %-10.1f\n" record_loss
        (100. *. float_of_int !proven /. float_of_int !total)
        (100. *. float_of_int !truly /. float_of_int !total))
    [ 0.0; 0.2; 0.5; 0.8 ]

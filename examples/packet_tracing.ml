(* Per-packet tracing in a simulated multihop network (§V.B's use case:
   "REFILL provides detailed per-packet tracing information based on event
   flows").

   Simulates a 2-day CitySee slice, picks a few packets with interesting
   fates, and prints each one's reconstructed flow, hop path, and loss
   verdict next to the simulator's ground truth.

   Run with: dune exec examples/packet_tracing.exe
*)

let print_trace collected truth ~sink (origin, seq) =
  let flow = Refill.Reconstruct.packet collected ~origin ~seq ~sink in
  let verdict = Refill.Classify.classify flow in
  Printf.printf "packet (origin %d, seq %d)\n" origin seq;
  Printf.printf "  flow   : %s\n" (Refill.Flow.to_string flow);
  Printf.printf "  path   : %s\n"
    (String.concat " -> "
       (List.map string_of_int (Refill.Flow.nodes_visited flow)));
  Printf.printf "  verdict: %s%s\n"
    (Logsys.Cause.name verdict.cause)
    (match verdict.loss_node with
    | Some n -> Printf.sprintf " at node %d" n
    | None -> "");
  (match Logsys.Truth.find truth ~origin ~seq with
  | Some fate ->
      Printf.printf "  truth  : %s%s (path %s)\n"
        (Logsys.Cause.name fate.cause)
        (match fate.loss_node with
        | Some n -> Printf.sprintf " at node %d" n
        | None -> "")
        (String.concat " -> " (List.map string_of_int fate.path))
  | None -> ());
  print_newline ()

let () =
  print_endline "simulating a 2-day, 100-node CitySee slice...";
  let scenario = Scenario.Citysee.run Scenario.Citysee.two_day in
  let truth = Node.Network.truth scenario.network in
  (* Collect logs with the realistic loss model: some records are gone. *)
  let collected =
    Scenario.Citysee.collected_lossy scenario Logsys.Loss_model.default
  in
  Printf.printf "%d packets generated; %d log records survived collection\n\n"
    (Node.Network.packets_generated scenario.network)
    (Logsys.Collected.total collected);

  (* Pick one packet per interesting fate. *)
  let pick cause =
    Logsys.Truth.fold truth ~init:None ~f:(fun acc key fate ->
        if acc = None && Logsys.Cause.equal fate.cause cause then Some key
        else acc)
  in
  let interesting =
    List.filter_map pick
      [
        Logsys.Cause.Delivered;
        Logsys.Cause.Timeout_loss;
        Logsys.Cause.Received_loss;
        Logsys.Cause.Acked_loss;
        Logsys.Cause.Duplicate_loss;
      ]
  in
  List.iter (print_trace collected truth ~sink:scenario.sink) interesting;

  (* Aggregate: longest reconstructed path, average inference per flow. *)
  let flows_rev = ref [] in
  Refill.Reconstruct.run collected ~sink:scenario.sink ~emit:(fun f ->
      flows_rev := f :: !flows_rev);
  let flows = List.rev !flows_rev in
  let longest =
    List.fold_left
      (fun best (f : Refill.Flow.t) ->
        let len = List.length (Refill.Flow.nodes_visited f) in
        match best with
        | Some (_, best_len) when best_len >= len -> best
        | _ -> Some (f, len))
      None flows
  in
  (match longest with
  | Some (f, len) ->
      Printf.printf "longest reconstructed path: %d hops (packet %d,%d)\n" len
        f.origin f.seq
  | None -> ());
  let summary = Refill.Reconstruct.summarize flows in
  Printf.printf
    "across all %d packets: %d logged events consumed, %d lost events \
     inferred\n"
    summary.packets summary.logged_events summary.inferred_events

(* Network diagnosis on the month-long CitySee deployment (§V.B–V.D).

   Runs the full 30-day scenario — snow on days 9–10, the unstable sink
   serial cable until day 23, backbone server outages — applies REFILL to
   the lossy collected logs, and walks through the paper's diagnosis
   narrative: whose packets are lost vs WHERE they are lost, the per-day
   cause composition, and the implications (the sink cable is the story).

   Run with: dune exec examples/citysee_diagnosis.exe
*)

let () =
  print_endline "simulating 30 compressed days of CitySee (100 nodes)...";
  let scenario = Scenario.Citysee.run Scenario.Citysee.default in
  let pipeline = Analysis.Pipeline.make scenario in
  Printf.printf "packets: %d   lost (missing from server DB): %d\n\n"
    (Node.Network.packets_generated scenario.network)
    (List.length pipeline.loss_times);

  (* 1. Whose packets are lost? (the sink view, Fig. 4) *)
  let sources = Analysis.Temporal.source_view pipeline in
  Printf.printf
    "1. WHOSE packets are lost: %d distinct source nodes — losses look \
     uniform across the network.\n"
    (Analysis.Temporal.distinct_nodes sources);

  (* 2. WHERE are they lost? (REFILL, Fig. 5/8) *)
  let positions = Analysis.Temporal.position_view pipeline in
  Printf.printf
    "2. WHERE they are lost (REFILL): %d distinct positions; the top 3 \
     nodes hold %.0f%% of all losses.\n"
    (Analysis.Temporal.distinct_nodes positions)
    (100. *. Analysis.Temporal.node_concentration positions ~top:3);
  let received = Analysis.Spatial.received_losses pipeline in
  Printf.printf
    "   received losses at the sink: %.0f%% — packets die AFTER reaching \
     the sink.\n"
    (100. *. Analysis.Spatial.sink_share received ~sink:scenario.sink);

  (* 3. Why? (Fig. 9 breakdown) *)
  let breakdown = Analysis.Breakdown.of_pipeline pipeline in
  Printf.printf
    "3. WHY: acked %.1f%% (%.1f%% at sink), received %.1f%% (%.1f%% at \
     sink), server-outage %.1f%%,\n\
    \        timeout %.1f%%, duplicate %.1f%%, overflow %.1f%% — link \
     losses are NOT the story;\n\
    \        the sink's serial connection is.\n"
    (100. *. breakdown.acked_total)
    (100. *. breakdown.acked_sink)
    (100. *. breakdown.received_total)
    (100. *. breakdown.received_sink)
    (100. *. breakdown.server_outage)
    (100. *. breakdown.timeout)
    (100. *. breakdown.duplicate)
    (100. *. breakdown.overflow);

  (* 4. The repair, visible in the time series (Fig. 6). *)
  let daily = Analysis.Composition.losses_per_day pipeline in
  let mean lo hi =
    let slice = Array.sub daily lo (hi - lo + 1) in
    Prelude.Stats.mean (Array.map float_of_int slice)
  in
  Printf.printf
    "4. THE FIX: replacing the sink cable on day 23 cut daily losses from \
     %.0f (days 12-21) to %.0f (days 24-29).\n"
    (mean 12 21) (mean 24 29);
  Printf.printf "   daily losses: %s\n\n"
    (Prelude.Ascii_chart.sparkline (Array.map float_of_int daily));

  (* 5. The paper's §V.D.2 criticism: time-window correlation cannot do
     this. Score it against ground truth on the same losses. *)
  let records =
    Logsys.Collected.merged_concat pipeline.collected
  in
  let corr_verdicts =
    Baseline.Time_corr.classify_all ~records
      ~window_size:scenario.params.day_length ~losses:pipeline.loss_times
  in
  let corr_acc =
    Analysis.Metrics.accuracy
      (Analysis.Metrics.confusion ~truth:pipeline.truth
         ~verdicts:corr_verdicts)
  in
  let refill_acc =
    Analysis.Metrics.accuracy
      (Analysis.Metrics.confusion ~truth:pipeline.truth
         ~verdicts:
           (List.map
              (fun (k, (v : Refill.Classify.verdict)) -> (k, v.cause))
              pipeline.refill))
  in
  Printf.printf
    "5. versus time-correlation (§V.D.2): correlation attributes causes \
     with %.0f%% accuracy on lost packets;\n\
    \   REFILL reaches %.0f%% on every packet — coexisting causes in one \
     window defeat correlation.\n"
    (100. *. corr_acc) (100. *. refill_acc)

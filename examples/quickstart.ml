(* Quickstart: reconstruct a packet's event flow from hand-written lossy
   logs — the Table II scenario of the paper, in ~40 lines of API.

   Run with: dune exec examples/quickstart.exe
*)

(* An event record is (node where logged, what happened, packet identity).
   [true_time]/[gseq] are simulator ground-truth fields; for hand-written
   logs they can be zeroed — REFILL never reads them. *)
let record node kind : Logsys.Record.t =
  { node; kind; origin = 1; pkt_seq = 0; true_time = 0.; gseq = 0 }

let () =
  (* The surviving log records of one packet: node 1 transmitted to node 2
     and saw an ACK... and that is ALL we have — node 2's log was lost, and
     node 3 only logged the reception from node 2. *)
  let surviving_records =
    [
      record 1 (Trans { to_ = 2 });
      record 1 (Ack_recvd { to_ = 2 });
      record 3 (Recv { from = 2 });
    ]
  in

  (* Build the connected inference engines for this packet (origin = node 1;
     node 99 stands in for a sink that never saw the packet). *)
  let config =
    Refill.Protocol.make_config ~records:surviving_records ~origin:1 ~seq:0
      ~sink:99
  in
  let events = Refill.Protocol.events_of_records surviving_records in

  (* Run the transition algorithm: logged events fire transitions; gaps are
     bridged by inferring the lost events (shown in [brackets]). *)
  let acc = ref [] in
  let stats =
    Refill.Engine.process config
      (Refill.Engine.Events (Array.of_list events))
      ~emit:(fun it -> acc := it :: !acc)
  in
  let items = List.rev !acc in
  let flow = { Refill.Flow.origin = 1; seq = 0; items; stats; prov = [||] } in

  Printf.printf "surviving records : %s\n"
    (String.concat ", " (List.map Logsys.Record.to_string surviving_records));
  Printf.printf "reconstructed flow: %s\n" (Refill.Flow.to_string flow);
  Printf.printf "inferred events   : %d of %d\n"
    stats.emitted_inferred
    (List.length flow.items);
  Printf.printf "packet path       : %s\n"
    (String.concat " -> "
       (List.map string_of_int (Refill.Flow.nodes_visited flow)));

  (* Where did the packet die, and why? *)
  let verdict = Refill.Classify.classify flow in
  Printf.printf "verdict           : %s%s\n"
    (Logsys.Cause.name verdict.cause)
    (match verdict.loss_node with
    | Some n -> Printf.sprintf " at node %d" n
    | None -> "")

(* The `refill` command-line tool.

   Subcommands:
     simulate     run a CitySee-like deployment and dump the (lossy) collected
                  logs — with ground truth — to a file
     analyze      reconstruct event flows from a log dump and report loss
                  positions, causes, and accuracy against any embedded truth
     reconstruct  run the reconstruction pipeline alone, batch or streaming
                  (bounded memory, checkpoint/resume)
     trace        print one packet's reconstructed event flow
     figures      regenerate the paper's figures from a fresh simulation
*)

open Cmdliner
module Obs = Refill_obs

(* -- Observability plumbing ------------------------------------------------- *)

type obs_opts = {
  metrics : string option;  (* "-" = stdout *)
  trace_out : string option;
  quiet : bool;
  verbose : bool;
}

let obs_opts_term =
  let metrics =
    let doc =
      "Dump a metrics snapshot after the command: Prometheus text to \
       $(docv) (stdout if $(docv) is '-' or omitted), or JSON if $(docv) \
       ends in .json."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let trace_out =
    let doc =
      "Record pipeline spans to $(docv) as Chrome trace_event JSON \
       (open in Perfetto or chrome://tracing)."
    in
    Arg.(
      value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress output.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show debug output.")
  in
  Term.(
    const (fun metrics trace_out quiet verbose ->
        { metrics; trace_out; quiet; verbose })
    $ metrics $ trace_out $ quiet $ verbose)

let dump_metrics = function
  | None -> ()
  | Some dest ->
      let text =
        if dest <> "-" && Filename.check_suffix dest ".json" then
          Obs.Metrics.dump_json () ^ "\n"
        else Obs.Metrics.dump_prometheus ()
      in
      if dest = "-" then print_string text
      else begin
        let oc = open_out dest in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc text);
        Obs.Log.info "metrics dump written to %s" dest
      end

(* One process-wide at_exit flush: whatever sink is still installed when
   the process ends gets finalized, so --trace-out files are complete
   valid JSON even on paths that bypass the normal teardown. *)
let () = at_exit (fun () -> Obs.Sink.close (Obs.Span.sink ()))

(* Every exit path funnels through here — normal return, pipeline
   exception, and the signal-driven server shutdown (whose handler makes
   `serve` return normally) — so a requested --metrics dump is never
   lost.  The trace sink is closed before dumping so span counters are
   final, and a dump failure on the error path must not mask the
   original error. *)
let with_metrics_flush opts f =
  let cleanup () = Obs.Sink.close (Obs.Span.swap_sink Obs.Sink.null) in
  let dump_metrics_guarded () =
    try dump_metrics opts.metrics
    with Sys_error msg -> Obs.Log.error "metrics dump failed: %s" msg
  in
  match f () with
  | code ->
      cleanup ();
      (match opts.trace_out with
      | Some path ->
          Obs.Log.info
            "trace written to %s (load it in Perfetto or chrome://tracing)"
            path
      | None -> ());
      dump_metrics opts.metrics;
      code
  | exception e ->
      cleanup ();
      dump_metrics_guarded ();
      raise e

(* Install the requested log level and trace sink, run the command body
   under the metrics-flush wrapper, and turn unreadable/corrupt inputs
   into a clear message and a non-zero exit instead of an exception
   backtrace. *)
let with_observability opts f =
  Obs.Log.set_level
    (if opts.quiet then Obs.Log.Quiet
     else if opts.verbose then Obs.Log.Debug
     else Obs.Log.Info);
  (match opts.trace_out with
  | Some path ->
      (* swap, then close: a sink left installed by an earlier install
         must be finalized, not leaked. *)
      Obs.Sink.close (Obs.Span.swap_sink (Obs.Sink.file path))
  | None -> ());
  match with_metrics_flush opts f with
  | code -> code
  | exception Sys_error msg ->
      Obs.Log.error "%s" msg;
      1
  | exception Failure msg ->
      Obs.Log.error "%s" msg;
      1

(* Structured pipeline errors carry their own exit-code mapping
   (I/O and malformed input -> 1, bad configuration -> 2). *)
let err_exit e =
  Obs.Log.error "%s" (Refill.Error.message e);
  Refill.Error.exit_code e

(* -- Provenance / flow-quality plumbing ------------------------------------- *)

(* --provenance[=FILE]: bare flag prints the human scorecard summary;
   FILE writes the refill-quality-v1 JSON document ('-' = stdout). The
   empty string is the bare flag's sentinel (never a valid path). *)
let provenance_arg =
  let doc =
    "Collect per-event provenance and report flow-quality scorecards \
     (fraction inferred, mechanism mix, per-node and per-link loss \
     estimates).  With $(docv), write the full refill-quality-v1 JSON \
     document to $(docv) ('-' = stdout); bare $(opt) prints a human \
     summary."
  in
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "provenance" ] ~docv:"FILE" ~doc)

let write_quality dest q =
  match dest with
  | "" -> print_string (Analysis.Quality.to_string q)
  | "-" ->
      print_string (Obs.Json.to_string (Analysis.Quality.to_json q) ^ "\n")
  | path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc
            (Obs.Json.to_string (Analysis.Quality.to_json q) ^ "\n"));
      Obs.Log.info "flow-quality report written to %s" path

(* -- Shared pipeline-config flags ------------------------------------------- *)

(* The one flag block for every subcommand that builds a
   [Refill.Config.t] (reconstruct, analyze, serve).  Parsing goes
   through [Config.of_options], so an omitted flag keeps the library
   default and an out-of-range value maps onto the same
   [Invalid_config] exit code in every subcommand. *)
let config_term =
  let chunk_events =
    Arg.(
      value
      & opt (some int) None
      & info [ "chunk-events" ] ~docv:"N"
          ~doc:
            (Printf.sprintf
               "Records per segment fed to the streaming frontier (default \
                %d)."
               Refill.Config.default.chunk_events))
  in
  let watermark =
    Arg.(
      value
      & opt (some int) None
      & info [ "watermark" ] ~docv:"N"
          ~doc:
            (Printf.sprintf
               "Evict a packet once no record of it appeared in the last \
                $(docv) records processed (default %d)."
               Refill.Config.default.watermark))
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard the streaming frontier across $(docv) worker domains, \
             routing each packet key by hash.  Output is byte-identical to \
             --shards 1.  Checkpoints record all shards and resume at any \
             shard count.")
  in
  let late_retention =
    Arg.(
      value
      & opt (some int) None
      & info [ "late-retention" ] ~docv:"N"
          ~doc:
            "Forget an evicted packet key $(docv) records after its \
             eviction, bounding the memory behind late-fragment detection \
             (default: 4x the watermark).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:"Worker domains for the batch path (default: auto).")
  in
  Term.(
    const (fun chunk_events watermark shards late_retention jobs ->
        fun ~provenance ->
          Refill.Config.of_options ?chunk_events ?watermark ?shards
            ?late_retention:(Option.map Option.some late_retention)
            ?jobs:(Option.map Option.some jobs)
            ~provenance ())
    $ chunk_events $ watermark $ shards $ late_retention $ jobs)

(* -- Shared argument definitions ------------------------------------------- *)

let seed_arg =
  let doc = "Master random seed; every run is deterministic in it." in
  Arg.(value & opt int 2015 & info [ "seed" ] ~docv:"SEED" ~doc)

let days_arg =
  let doc = "Number of compressed days to simulate." in
  Arg.(value & opt int 2 & info [ "days" ] ~docv:"DAYS" ~doc)

let nodes_arg =
  let doc = "Approximate node count (realized as the nearest grid)." in
  Arg.(value & opt int 100 & info [ "nodes" ] ~docv:"N" ~doc)

let loss_arg =
  let doc =
    "Log lossiness: 'none', 'default', or a uniform per-record drop \
     probability like '0.2'."
  in
  Arg.(value & opt string "default" & info [ "log-loss" ] ~docv:"SPEC" ~doc)

let parse_loss spec =
  match spec with
  | "none" -> Ok Logsys.Loss_model.none
  | "default" -> Ok Logsys.Loss_model.default
  | s -> (
      match float_of_string_opt s with
      | Some p when p >= 0. && p <= 1. -> Ok (Logsys.Loss_model.uniform p)
      | Some _ | None ->
          Error (Printf.sprintf "invalid --log-loss %S" s))

let scenario_params ~seed ~days ~nodes =
  {
    Scenario.Citysee.default with
    seed = Int64.of_int seed;
    days;
    n_nodes = nodes;
    (* The default's environmental event counts describe a 30-day month;
       scale them to the requested horizon. *)
    server_outages = max 1 (4 * days / 30);
    snow_days =
      (match Scenario.Citysee.default.snow_days with
      | Some (d0, _) when d0 >= days -> None
      | other -> other);
    sink_fix_day =
      (match Scenario.Citysee.default.sink_fix_day with
      | Some d when d >= days -> None
      | other -> other);
  }

(* -- simulate ----------------------------------------------------------------- *)

let simulate obs seed days nodes loss stream_order output =
  with_observability obs @@ fun () ->
  match parse_loss loss with
  | Error e ->
      Obs.Log.error "%s" e;
      1
  | Ok loss_config ->
      let params = scenario_params ~seed ~days ~nodes in
      Obs.Log.info "simulating %d nodes for %d day(s) (seed %d)..." nodes days
        seed;
      let t = Scenario.Citysee.run params in
      let collected = Scenario.Citysee.collected_lossy t loss_config in
      let truth = Node.Network.truth t.network in
      Logsys.Log_io.save_file output ~sink:t.sink ~truth
        ~time_order:stream_order collected;
      Printf.printf
        "generated %d packets, %d surviving log records -> %s (sink = node \
         %d)\n"
        (Node.Network.packets_generated t.network)
        (Logsys.Collected.total collected)
        output t.sink;
      0

let simulate_cmd =
  let output =
    Arg.(
      value
      & opt string "citysee-logs.txt"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output log dump file.")
  in
  let stream_order =
    Arg.(
      value & flag
      & info [ "stream-order" ]
          ~doc:
            "Dump records in arrival (true-time) order instead of node-major \
             order — the shape `refill reconstruct --stream` wants.")
  in
  let doc = "Simulate a CitySee-like deployment and dump collected logs." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const simulate $ obs_opts_term $ seed_arg $ days_arg $ nodes_arg
      $ loss_arg $ stream_order $ output)

(* -- analyze ------------------------------------------------------------------ *)

let print_breakdown verdicts ~sink ~total_label =
  let counts = Hashtbl.create 8 in
  let at_sink = Hashtbl.create 8 in
  let lost = ref 0 in
  List.iter
    (fun ((_, v) : (int * int) * Refill.Classify.verdict) ->
      if not (Logsys.Cause.equal v.cause Logsys.Cause.Delivered) then begin
        incr lost;
        Hashtbl.replace counts v.cause
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts v.cause));
        if v.loss_node = Some sink then
          Hashtbl.replace at_sink v.cause
            (1 + Option.value ~default:0 (Hashtbl.find_opt at_sink v.cause))
      end)
    verdicts;
  Printf.printf "%s: %d lost of %d analyzed\n" total_label !lost
    (List.length verdicts);
  List.iter
    (fun cause ->
      match Hashtbl.find_opt counts cause with
      | None | Some 0 -> ()
      | Some c ->
          let s = Option.value ~default:0 (Hashtbl.find_opt at_sink cause) in
          Printf.printf "  %-14s %5d (%5.1f%%)%s\n" (Logsys.Cause.name cause)
            c
            (100. *. float_of_int c /. float_of_int (max 1 !lost))
            (if s > 0 then Printf.sprintf "  [%d at sink]" s else ""))
    (Logsys.Cause.loss_causes @ [ Logsys.Cause.Unknown ])

let analyze obs mk_config global_flow provenance input =
  with_observability obs @@ fun () ->
  match mk_config ~provenance:(provenance <> None) with
  | Error e -> err_exit e
  | Ok config -> (
      match Logsys.Log_io.load_file input with
      | dump ->
      Obs.Log.debug "loaded %d surviving records from %s"
        (Logsys.Collected.total dump.collected)
        input;
      let flows_rev = ref [] in
      Refill.Reconstruct.run ~config dump.collected ~sink:dump.sink
        ~emit:(fun f -> flows_rev := f :: !flows_rev);
      let flows = List.rev !flows_rev in
      Option.iter
        (fun dest -> write_quality dest (Analysis.Quality.of_flows flows))
        provenance;
      let summary = Refill.Reconstruct.summarize flows in
      Printf.printf
        "reconstructed %d packets: %d logged events, %d inferred lost \
         events, %d unusable records\n"
        summary.packets summary.logged_events summary.inferred_events
        summary.skipped_events;
      if global_flow then begin
        let (gs : Refill.Global_flow.stats) =
          Refill.Global_flow.merge dump.collected
            ~flows:(Array.of_list flows) ~emit:ignore
        in
        Printf.printf
          "global flow: %d events merged (%d logged, %d inferred), %d \
           node-log constraints relaxed\n"
          gs.events gs.logged gs.inferred gs.relaxed
      end;
      let verdicts =
        List.map
          (fun (f : Refill.Flow.t) ->
            ((f.origin, f.seq), Refill.Classify.classify f))
          flows
      in
      print_breakdown verdicts ~sink:dump.sink ~total_label:"verdicts";
      (match dump.truth with
      | None ->
          print_string
            "note: no server database available; Delivered verdicts cannot \
             be split into delivered vs server-outage.\n"
      | Some truth ->
          (* The server's database (which packets actually arrived) is part
             of the operators' toolbox; reconcile as §V.C does. *)
          let delivered_db =
            Logsys.Truth.fold truth ~init:[] ~f:(fun acc key fate ->
                if Logsys.Cause.equal fate.cause Logsys.Cause.Delivered then
                  (key, fate.resolved_at) :: acc
                else acc)
          in
          let refined =
            Analysis.Pipeline.refine_with_server ~delivered_db verdicts
          in
          print_newline ();
          print_breakdown refined ~sink:dump.sink
            ~total_label:"verdicts (reconciled with server DB)";
          let accuracy v =
            100.
            *. Analysis.Metrics.accuracy
                 (Analysis.Metrics.confusion ~truth
                    ~verdicts:
                      (List.map
                         (fun (k, (x : Refill.Classify.verdict)) ->
                           (k, x.cause))
                         v))
          in
          Printf.printf
            "cause accuracy vs ground truth: %.1f%% from WSN logs alone, \
             %.1f%% reconciled with the server DB\n"
            (accuracy verdicts) (accuracy refined));
      0)

let analyze_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LOGFILE" ~doc:"Log dump produced by `refill simulate`.")
  in
  let global_flow =
    Arg.(
      value & flag
      & info [ "global-flow" ]
          ~doc:
            "Also merge the per-packet flows into the network-wide event \
             flow (§II Eq. 1) and report its merge statistics.")
  in
  let doc = "Reconstruct event flows from a log dump and classify losses." in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      const analyze $ obs_opts_term $ config_term $ global_flow
      $ provenance_arg $ input)

(* -- reconstruct -------------------------------------------------------------- *)

let print_packet_summary (s : Refill.Reconstruct.summary) =
  Printf.printf
    "reconstructed %d packets: %d logged events, %d inferred lost events, %d \
     unusable records\n"
    s.packets s.logged_events s.inferred_events s.skipped_events

let print_global_flow_stats (gs : Refill.Global_flow.stats) =
  Printf.printf
    "global flow: %d events merged (%d logged, %d inferred), %d node-log \
     constraints relaxed\n"
    gs.events gs.logged gs.inferred gs.relaxed

let print_stream_summary (s : Refill.Stream.summary) =
  Printf.printf
    "streamed %d records in %d segment(s): %d flows (%d complete, %d \
     incomplete), %d mid-stream evictions, %d late fragments, %d forgotten \
     keys, peak frontier %d events\n"
    s.events s.segments s.flows s.complete s.incomplete s.evictions
    s.late_fragments s.forgotten_keys s.peak_frontier_events

(* Open an mmap reader with the same error surface as the channel path. *)
let open_mseg input =
  match Logsys.Log_io.Mseg.open_file input with
  | r -> Ok r
  | exception Unix.Unix_error (e, _, _) ->
      Error (Refill.Error.Io { path = input; message = Unix.error_message e })
  | exception Sys_error message ->
      Error (Refill.Error.Io { path = input; message })
  | exception Failure message ->
      Error (Refill.Error.Malformed { source = input; message })

let reconstruct_batch (config : Refill.Config.t) ~global_flow ~quality input =
  match
    Refill.Error.guard ~source:input (fun () -> Logsys.Log_io.load_file input)
  with
  | Error e -> err_exit e
  | Ok dump ->
      let summary = ref Refill.Reconstruct.empty_summary in
      let flows_rev = ref [] in
      (* Quality accumulates per flow as it is emitted, so the provenance
         path never forces flow retention (only --global-flow does). *)
      let qacc = Option.map (fun _ -> Analysis.Quality.create ()) quality in
      Refill.Reconstruct.run ~config dump.collected ~sink:dump.sink
        ~emit:(fun f ->
          summary := Refill.Reconstruct.summary_add !summary f;
          Option.iter (fun acc -> Analysis.Quality.add acc f) qacc;
          if global_flow then flows_rev := f :: !flows_rev);
      print_packet_summary !summary;
      (match (quality, qacc) with
      | Some dest, Some acc -> write_quality dest (Analysis.Quality.finish acc)
      | _ -> ());
      if global_flow then
        print_global_flow_stats
          (Refill.Global_flow.merge ?jobs:config.jobs dump.collected
             ~flows:(Array.of_list (List.rev !flows_rev))
             ~emit:ignore);
      0

let reconstruct_batch_mmap (config : Refill.Config.t) ~global_flow ~quality
    input =
  let loaded =
    match open_mseg input with
    | Error e -> Error e
    | Ok reader ->
        Refill.Error.guard ~source:input (fun () ->
            let arena = Logsys.Arena.create () in
            while
              Logsys.Log_io.Mseg.next_into reader arena
                ~max_records:config.chunk_events
              > 0
            do
              ()
            done;
            let packets =
              Logsys.Arena.Packets.build arena
                ~n_nodes:(Logsys.Log_io.Mseg.n_nodes reader)
            in
            (packets, Logsys.Log_io.Mseg.sink reader))
  in
  match loaded with
  | Error e -> err_exit e
  | Ok (packets, sink) ->
      let summary = ref Refill.Reconstruct.empty_summary in
      let flows_rev = ref [] in
      let qacc = Option.map (fun _ -> Analysis.Quality.create ()) quality in
      Refill.Reconstruct.run_arena ~config packets ~sink ~emit:(fun f ->
          summary := Refill.Reconstruct.summary_add !summary f;
          Option.iter (fun acc -> Analysis.Quality.add acc f) qacc;
          if global_flow then flows_rev := f :: !flows_rev);
      print_packet_summary !summary;
      (match (quality, qacc) with
      | Some dest, Some acc -> write_quality dest (Analysis.Quality.finish acc)
      | _ -> ());
      if global_flow then
        print_global_flow_stats
          (Refill.Global_flow.merge_from ?jobs:config.jobs
             (Refill.Global_flow.Arena_index packets)
             ~flows:(Array.of_list (List.rev !flows_rev))
             ~emit:ignore);
      0

(* The streaming body shared by the channel (Seg) and mmap (Mseg) readers:
   [skip] fast-forwards the input on checkpoint resume, [feed_all]
   drives the segment loop. *)
let reconstruct_stream_core (config : Refill.Config.t) ~global_flow ~quality
    ~checkpoint ~finish ~emit_file ~source ~sink ~n_nodes ~skip
    ~(feed_all :
       Refill_serve.Driver.t -> Refill.Global_flow.Incremental.t option -> unit)
    =
  let inc =
    if global_flow then
      Some (Refill.Global_flow.Incremental.create ~n_nodes ())
    else None
  in
  let summary = ref Refill.Reconstruct.empty_summary in
  let qacc = Option.map (fun _ -> Analysis.Quality.create ()) quality in
  (* The same outcome-line sink `refill serve` writes, so a server run
     over the same record sequence can be byte-diffed against this one. *)
  let esink =
    match emit_file with
    | None -> Refill_serve.Emit.null
    | Some path -> Refill_serve.Emit.to_file path
  in
  let emit (e : Refill.Stream.emitted) =
    summary := Refill.Reconstruct.summary_add !summary e.flow;
    Option.iter (fun acc -> Analysis.Quality.add acc e.flow) qacc;
    Refill_serve.Emit.emit_to esink e;
    Option.iter
      (fun g -> Refill.Global_flow.Incremental.add_flow g e.flow)
      inc
  in
  let stream_r =
    match checkpoint with
    | Some path when Sys.file_exists path -> (
        match Refill_serve.Driver.resume_file ~config path ~sink ~emit with
        | Error e -> Error e
        | Ok d ->
            let want = d.Refill_serve.Driver.processed () in
            let skipped = skip want in
            if skipped < want then
              Error
                (Refill.Error.Bad_checkpoint
                   {
                     source = path;
                     message =
                       Printf.sprintf
                         "checkpoint is ahead of the input (%d records \
                          processed, input has %d)"
                         want skipped;
                   })
            else begin
              Obs.Log.info "resumed from %s at record %d" path want;
              Ok d
            end)
    | _ -> Ok (Refill_serve.Driver.create ~config ~sink ~emit ())
  in
  let code =
    match stream_r with
    | Error e -> err_exit e
    | Ok t -> (
        match Refill.Error.guard ~source (fun () -> feed_all t inc) with
        | Error e -> err_exit e
        | Ok () -> (
                  (* Checkpoint the live (pre-flush) state so a later run can
                     resume exactly here; --finish then decides whether to
                     flush the frontier now. *)
                  match
                    match checkpoint with
                    | Some path -> t.checkpoint_file path
                    | None -> Ok ()
                  with
                  | Error e -> err_exit e
                  | Ok () ->
                      (match checkpoint with
                      | Some path ->
                          Obs.Log.info "checkpoint written to %s" path
                      | None -> ());
                      let flush_now = finish || checkpoint = None in
                      if flush_now then begin
                        let s = t.finish () in
                        print_packet_summary !summary;
                        print_stream_summary s;
                        (match (quality, qacc) with
                        | Some dest, Some acc ->
                            write_quality dest (Analysis.Quality.finish acc)
                        | _ -> ());
                        Option.iter
                          (fun g ->
                            print_global_flow_stats
                              (Refill.Global_flow.Incremental.finish
                                 ?jobs:config.jobs g ~emit:ignore))
                          inc
                      end
                      else begin
                        let s = t.summary () in
                        print_stream_summary s;
                        Obs.Log.info
                          "frontier left open (%d buffered events); rerun \
                           with --finish to flush"
                          s.frontier_events
                      end;
                      0))
  in
  esink.Refill_serve.Emit.close ();
  (match emit_file with
  | Some path when code = 0 ->
      Obs.Log.info "flow outcomes written to %s" path
  | _ -> ());
  code

let reconstruct_stream (config : Refill.Config.t) ~global_flow ~quality
    ~checkpoint ~finish ~emit_file input =
  match open_in input with
  | exception Sys_error message ->
      err_exit (Refill.Error.Io { path = input; message })
  | ic -> (
      Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
      match
        Refill.Error.guard ~source:input (fun () ->
            Logsys.Log_io.Seg.of_channel ic)
      with
      | Error e -> err_exit e
      | Ok reader ->
          let feed_all (t : Refill_serve.Driver.t) inc =
            let rec loop () =
              match
                Logsys.Log_io.Seg.next reader ~max_records:config.chunk_events
              with
              | None -> ()
              | Some seg ->
                  Option.iter
                    (fun g -> Refill.Global_flow.Incremental.add_records g seg)
                    inc;
                  t.feed seg;
                  loop ()
            in
            loop ()
          in
          reconstruct_stream_core config ~global_flow ~quality ~checkpoint
            ~finish ~emit_file ~source:input
            ~sink:(Logsys.Log_io.Seg.sink reader)
            ~n_nodes:(Logsys.Log_io.Seg.n_nodes reader)
            ~skip:(Logsys.Log_io.Seg.skip reader)
            ~feed_all)

let reconstruct_stream_mmap (config : Refill.Config.t) ~global_flow ~quality
    ~checkpoint ~finish ~emit_file input =
  match open_mseg input with
  | Error e -> err_exit e
  | Ok reader ->
      (* One arena reused per chunk: clear keeps the column storage, so a
         steady-state chunk allocates nothing on the ingest side. *)
      let arena = Logsys.Arena.create ~capacity:config.chunk_events () in
      let feed_all (t : Refill_serve.Driver.t) inc =
        let rec loop () =
          Logsys.Arena.clear arena;
          let n =
            Logsys.Log_io.Mseg.next_into reader arena
              ~max_records:config.chunk_events
          in
          if n > 0 then begin
            let s = Logsys.Arena.slice_all arena in
            Option.iter
              (fun g -> Refill.Global_flow.Incremental.add_arena g s)
              inc;
            t.feed_arena s;
            loop ()
          end
        in
        loop ()
      in
      reconstruct_stream_core config ~global_flow ~quality ~checkpoint ~finish
        ~emit_file ~source:input
        ~sink:(Logsys.Log_io.Mseg.sink reader)
        ~n_nodes:(Logsys.Log_io.Mseg.n_nodes reader)
        ~skip:(Logsys.Log_io.Mseg.skip reader)
        ~feed_all

let reconstruct obs mk_config stream mmap checkpoint finish emit_file
    global_flow quality input =
  with_observability obs @@ fun () ->
  match mk_config ~provenance:(quality <> None) with
  | Error e -> err_exit e
  | Ok (config : Refill.Config.t) ->
      if (not stream) && (checkpoint <> None || finish) then
        err_exit
          (Refill.Error.Invalid_config
             "--checkpoint and --finish require --stream")
      else if (not stream) && config.shards > 1 then
        err_exit
          (Refill.Error.Invalid_config "--shards requires --stream")
      else if (not stream) && emit_file <> None then
        err_exit
          (Refill.Error.Invalid_config "--emit-file requires --stream")
      else if global_flow && checkpoint <> None then
        err_exit
          (Refill.Error.Invalid_config
             "--global-flow cannot be combined with --checkpoint: the \
              incremental merge needs the records from before the resume \
              point")
      else if stream then
        (if mmap then reconstruct_stream_mmap else reconstruct_stream)
          config ~global_flow ~quality ~checkpoint ~finish ~emit_file input
      else if mmap then reconstruct_batch_mmap config ~global_flow ~quality input
      else reconstruct_batch config ~global_flow ~quality input

let reconstruct_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LOGFILE" ~doc:"Log dump produced by `refill simulate`.")
  in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Consume the dump incrementally with bounded memory, emitting \
             each packet's flow when it goes quiet, instead of loading the \
             whole file.")
  in
  let mmap =
    Arg.(
      value & flag
      & info [ "mmap" ]
          ~doc:
            "Memory-map the dump and decode record lines in place into \
             flat arena columns (zero-copy ingest) instead of reading \
             through a channel.  Works in batch and streaming mode; \
             output is byte-identical to the default reader.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Resume from $(docv) if it exists, and write the live frontier \
             back to it at end of input.  Implies leaving the frontier open \
             unless --finish is also given.")
  in
  let finish =
    Arg.(
      value & flag
      & info [ "finish" ]
          ~doc:
            "With --checkpoint: flush every still-open packet at end of \
             input instead of leaving the frontier for a later resume.")
  in
  let emit_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-file" ] ~docv:"FILE"
          ~doc:
            "With --stream: write each emitted flow outcome as one text \
             line to $(docv) — the same format `refill serve` emits, so \
             the two can be byte-diffed.")
  in
  let global_flow =
    Arg.(
      value & flag
      & info [ "global-flow" ]
          ~doc:
            "Also merge the per-packet flows into the network-wide event \
             flow (§II Eq. 1) and report its merge statistics.")
  in
  let doc =
    "Reconstruct per-packet event flows from a log dump, batch or streaming."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Without $(b,--stream) this loads the whole dump and runs the batch \
         pipeline.  With $(b,--stream) the dump is consumed segment by \
         segment: only the frontier (packets whose records are still \
         arriving) is held in memory, each packet's flow is emitted when no \
         record of it has been seen for $(b,--watermark) records, and the \
         run can checkpoint its state and resume later.";
      `P
        "Streaming wants arrival-ordered input (`refill simulate \
         --stream-order`); node-major dumps work but keep nearly every \
         packet open until end of input.";
    ]
  in
  Cmd.v
    (Cmd.info "reconstruct" ~doc ~man)
    Term.(
      const reconstruct $ obs_opts_term $ config_term $ stream $ mmap
      $ checkpoint $ finish $ emit_file $ global_flow $ provenance_arg
      $ input)

(* -- trace -------------------------------------------------------------------- *)

let trace obs input origin seq =
  with_observability obs @@ fun () ->
  match Logsys.Log_io.load_file input with
  | dump ->
      let flow =
        Refill.Reconstruct.packet dump.collected ~origin ~seq ~sink:dump.sink
      in
      if Refill.Flow.length flow = 0 then begin
        Printf.printf "no surviving records for packet (%d, %d)\n" origin seq;
        1
      end
      else begin
        Printf.printf "packet (origin %d, seq %d)\n" origin seq;
        Printf.printf "flow : %s\n" (Refill.Flow.to_string flow);
        print_newline ();
        print_string (Refill.Flow.to_sequence_diagram flow);
        print_newline ();
        Printf.printf "path : %s\n"
          (String.concat " -> "
             (List.map string_of_int (Refill.Flow.nodes_visited flow)));
        let v = Refill.Classify.classify flow in
        Printf.printf "cause: %s%s%s\n"
          (Logsys.Cause.name v.cause)
          (match v.loss_node with
          | Some n -> Printf.sprintf " at node %d" n
          | None -> "")
          (match v.next_hop with
          | Some n -> Printf.sprintf " (toward node %d)" n
          | None -> "");
        (match dump.truth with
        | Some truth -> (
            match Logsys.Truth.find truth ~origin ~seq with
            | Some fate ->
                Printf.printf "truth: %s%s, path %s\n"
                  (Logsys.Cause.name fate.cause)
                  (match fate.loss_node with
                  | Some n -> Printf.sprintf " at node %d" n
                  | None -> "")
                  (String.concat " -> " (List.map string_of_int fate.path))
            | None -> ())
        | None -> ());
        0
      end

let trace_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LOGFILE" ~doc:"Log dump produced by `refill simulate`.")
  in
  let origin =
    Arg.(
      required
      & opt (some int) None
      & info [ "origin" ] ~docv:"NODE" ~doc:"Origin node of the packet.")
  in
  let seq =
    Arg.(
      required
      & opt (some int) None
      & info [ "seq" ] ~docv:"SEQ" ~doc:"Per-origin sequence number.")
  in
  let doc = "Print one packet's reconstructed event flow." in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(const trace $ obs_opts_term $ input $ origin $ seq)

(* -- explain ------------------------------------------------------------------- *)

let explain_json ~origin ~seq ~records (flow : Refill.Flow.t) =
  let module J = Obs.Json in
  let num i = J.Num (float_of_int i) in
  let evidence_json (pv : Refill.Provenance.t) =
    J.Arr
      (Array.to_list (Refill.Provenance.evidence pv)
      |> List.map (fun idx ->
             J.Obj
               [
                 ("index", num idx);
                 ( "record",
                   if idx >= 0 && idx < Array.length records then
                     J.Str (Logsys.Record.to_string records.(idx))
                   else J.Null );
               ]))
  in
  let event_json k (it : Refill.Flow.item) =
    let pv = flow.prov.(k) in
    J.Obj
      [
        ("index", num k);
        ("node", num it.node);
        ("label", J.Str (Refill.Protocol.label_name it.label));
        ("inferred", J.Bool it.inferred);
        ("entered", J.Str (Refill.Protocol.state_name it.entered));
        ( "provenance",
          J.Obj
            [
              ( "mechanism",
                J.Str
                  (Refill.Provenance.mechanism_name
                     (Refill.Provenance.mechanism pv)) );
              ( "src",
                J.Str (Refill.Protocol.state_name (Refill.Provenance.src pv))
              );
              ( "dst",
                J.Str (Refill.Protocol.state_name (Refill.Provenance.dst pv))
              );
              ( "confidence",
                J.Str
                  (Refill.Provenance.confidence_name
                     (Refill.Provenance.confidence pv)) );
              ("evidence", evidence_json pv);
            ] );
      ]
  in
  let v = Refill.Classify.classify flow in
  J.Obj
    [
      ("schema", J.Str "refill-explain-v1");
      ("origin", num origin);
      ("seq", num seq);
      ("cause", J.Str (Logsys.Cause.name v.cause));
      ("events", J.Arr (List.mapi event_json flow.items));
    ]

let explain_text ~origin ~seq ~records (flow : Refill.Flow.t) =
  Printf.printf "packet (origin %d, seq %d): %d events, %d inferred\n" origin
    seq (Refill.Flow.length flow)
    (List.length (Refill.Flow.inferred_items flow));
  List.iteri
    (fun k (it : Refill.Flow.item) ->
      let pv = flow.prov.(k) in
      Printf.printf "  #%-3d %-18s %s\n" k
        (Refill.Flow.item_to_string it)
        (Refill.Provenance.to_string ~state_name:Refill.Protocol.state_name pv);
      Array.iter
        (fun idx ->
          if idx >= 0 && idx < Array.length records then
            Printf.printf "         evidence[%d] = %s\n" idx
              (Logsys.Record.to_string records.(idx)))
        (Refill.Provenance.evidence pv))
    flow.items;
  let v = Refill.Classify.classify flow in
  Printf.printf "cause: %s%s\n"
    (Logsys.Cause.name v.cause)
    (match v.loss_node with
    | Some n -> Printf.sprintf " at node %d" n
    | None -> "")

let explain obs json input origin seq =
  with_observability obs @@ fun () ->
  match
    Refill.Error.guard ~source:input (fun () -> Logsys.Log_io.load_file input)
  with
  | Error e -> err_exit e
  | Ok dump -> (
      let key =
        match (origin, seq) with
        | Some o, Some s -> Ok (o, s)
        | None, None -> (
            (* Default to the dump's first packet: a worked example needs no
               argument spelunking. *)
            match Logsys.Collected.packet_keys dump.collected with
            | [] -> Error "no packets in the dump"
            | k :: _ -> Ok k)
        | _ -> Error "give both --origin and --seq, or neither"
      in
      match key with
      | Error msg ->
          Obs.Log.error "%s" msg;
          1
      | Ok (origin, seq) ->
          let records =
            Logsys.Collected.packet_records dump.collected ~origin ~seq
          in
          let flow =
            Refill.Reconstruct.of_records ~provenance:true records ~origin
              ~seq ~sink:dump.sink
          in
          if Refill.Flow.length flow = 0 then begin
            Obs.Log.error "no surviving records for packet (%d, %d)" origin
              seq;
            1
          end
          else begin
            if json then
              print_string
                (Obs.Json.to_string (explain_json ~origin ~seq ~records flow)
                ^ "\n")
            else explain_text ~origin ~seq ~records flow;
            0
          end)

let explain_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LOGFILE" ~doc:"Log dump produced by `refill simulate`.")
  in
  let origin =
    Arg.(
      value
      & opt (some int) None
      & info [ "origin" ] ~docv:"NODE" ~doc:"Origin node of the packet.")
  in
  let seq =
    Arg.(
      value
      & opt (some int) None
      & info [ "seq" ] ~docv:"SEQ" ~doc:"Per-origin sequence number.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the provenance chain as a refill-explain-v1 JSON document.")
  in
  let doc =
    "Explain why REFILL believes each event of a packet's flow happened."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reconstructs one packet with provenance enabled and prints, for \
         every event, the mechanism that produced it (logged, \
         intra-inference, inter-inference), the FSM transition taken, its \
         confidence class, and the input records it was derived from.  \
         Without $(b,--origin)/$(b,--seq) the dump's first packet is \
         explained.";
    ]
  in
  Cmd.v (Cmd.info "explain" ~doc ~man)
    Term.(const explain $ obs_opts_term $ json $ input $ origin $ seq)

(* -- figures ------------------------------------------------------------------- *)

let figures obs seed days nodes csv_dir which =
  with_observability obs @@ fun () ->
  let params = scenario_params ~seed ~days ~nodes in
  Obs.Log.info "simulating %d nodes for %d day(s) (seed %d)..." nodes days
    seed;
  let t = Scenario.Citysee.run params in
  let p = Analysis.Pipeline.make t in
  (match csv_dir with
  | Some dir ->
      let written = Analysis.Export.write_all p ~dir in
      List.iter (fun path -> Obs.Log.info "wrote %s" path) written
  | None -> ());
  let render = function
    | "table2" -> print_string (Analysis.Figures.table2 ())
    | "fig4" -> print_string (Analysis.Figures.fig4 p)
    | "fig5" -> print_string (Analysis.Figures.fig5 p)
    | "fig6" -> print_string (Analysis.Figures.fig6 p)
    | "fig8" -> print_string (Analysis.Figures.fig8 p)
    | "fig9" -> print_string (Analysis.Figures.fig9 p)
    | other -> Obs.Log.error "unknown figure %S" other
  in
  (match which with
  | [] -> List.iter render [ "table2"; "fig4"; "fig5"; "fig6"; "fig8"; "fig9" ]
  | l -> List.iter render l);
  0

let figures_cmd =
  let which =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FIGURE"
          ~doc:"Figures to render (table2, fig4, fig5, fig6, fig8, fig9).")
  in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR"
          ~doc:"Also write each figure's underlying data as CSV into $(docv).")
  in
  let doc = "Regenerate the paper's figures from a fresh simulation." in
  Cmd.v
    (Cmd.info "figures" ~doc)
    Term.(
      const figures $ obs_opts_term $ seed_arg $ days_arg $ nodes_arg
      $ csv_dir $ which)

(* -- report -------------------------------------------------------------------- *)

let report obs seed days nodes =
  with_observability obs @@ fun () ->
  let params = scenario_params ~seed ~days ~nodes in
  Obs.Log.info "simulating %d nodes for %d day(s) (seed %d)..." nodes days
    seed;
  let t = Scenario.Citysee.run params in
  let pipeline = Analysis.Pipeline.make t in
  print_string (Analysis.Report.to_string (Analysis.Report.build pipeline));
  0

let report_cmd =
  let doc =
    "Simulate a deployment and print the full REFILL diagnosis report."
  in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(const report $ obs_opts_term $ seed_arg $ days_arg $ nodes_arg)

(* -- check --------------------------------------------------------------------- *)

let check obs json strict dot_dir models =
  with_observability obs @@ fun () ->
  let known = Refill_check.Builtin.names in
  let models =
    match models with [] -> Refill_check.Builtin.default_names | l -> l
  in
  let unknown = List.filter (fun m -> not (List.mem m known)) models in
  if unknown <> [] then begin
    Obs.Log.error "unknown model(s): %s (known: %s)"
      (String.concat ", " unknown)
      (String.concat ", " known);
    2
  end
  else begin
    let results =
      List.map
        (fun m ->
          (m, Option.get (Refill_check.Builtin.run_model m)))
        models
    in
    (match dot_dir with
    | None -> ()
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iter
          (fun m ->
            List.iter
              (fun (fname, src) ->
                let path = Filename.concat dir fname in
                let oc = open_out path in
                Fun.protect
                  ~finally:(fun () -> close_out oc)
                  (fun () -> output_string oc src);
                Obs.Log.info "wrote %s" path)
              (Refill_check.Builtin.dots m))
          models);
    if json then
      print_string
        (Obs.Json.to_string (Refill_check.Check.to_json results) ^ "\n")
    else print_string (Refill_check.Check.to_text results);
    let all = List.concat_map snd results in
    let failing =
      Refill_check.Check.error_count all
      + if strict then Refill_check.Diagnostic.count Warning all else 0
    in
    if failing > 0 then 1 else 0
  end

let check_cmd =
  let models =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"MODEL"
          ~doc:
            "Protocol models to analyze (ctp, dissem); all of them when \
             omitted.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the report as a JSON document (for CI).")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Promote warnings to errors: exit 1 when any warning-severity \
             diagnostic is found, not only errors.")
  in
  let dot_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"DIR"
          ~doc:
            "Also write each role FSM as Graphviz into $(docv), with the \
             derived intra transitions dashed, plus the product automaton \
             of every role that has confusable state pairs.")
  in
  let doc =
    "Statically analyze the protocol models (FSM well-formedness, intra \
     audit, prerequisite graph, classification totality, loss radius, \
     product-automaton ambiguity)."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs all six pass families over the named models and prints the \
         diagnostics sorted by code, then location.";
      `S Manpage.s_exit_status;
      `P
        "The exit-code contract is: 0 — no error-severity diagnostic (the \
         models uphold every invariant the inference pipeline relies on); \
         1 — at least one error-severity diagnostic, or, with $(b,--strict), \
         at least one warning; 2 — unknown model name (nothing was \
         analyzed).  Without $(b,--strict), warnings and infos never \
         affect the exit code.";
    ]
  in
  Cmd.v (Cmd.info "check" ~doc ~man)
    Term.(const check $ obs_opts_term $ json $ strict $ dot_dir $ models)

(* -- serve / feed -------------------------------------------------------------- *)

let serve obs mk_config port http_port checkpoint checkpoint_interval
    emit_file emit_socket read_timeout max_frame queue_capacity sink =
  with_observability obs @@ fun () ->
  match mk_config ~provenance:false with
  | Error e -> err_exit e
  | Ok stream_cfg -> (
      let emit =
        match (emit_file, emit_socket) with
        | None, None -> Refill_serve.Emit.null
        | Some path, None -> Refill_serve.Emit.to_file path
        | None, Some p -> Refill_serve.Emit.publish ~port:p
        | Some path, Some p ->
            Refill_serve.Emit.tee
              (Refill_serve.Emit.to_file path)
              (Refill_serve.Emit.publish ~port:p)
      in
      let cfg =
        {
          Refill_serve.Server.default_config with
          port;
          http_port;
          checkpoint;
          checkpoint_interval;
          read_timeout;
          max_frame;
          queue_capacity;
          stream = stream_cfg;
          sink;
          emit;
        }
      in
      match Refill_serve.Server.start cfg with
      | Error e -> err_exit e
      | Ok srv ->
          (* The handlers only flip an atomic; the server's timer thread
             does the teardown, `wait` returns normally, and the exit
             goes through with_metrics_flush like any other. *)
          let on_signal _ = Refill_serve.Server.request_stop srv in
          Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
          Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
          (match Refill_serve.Server.http_port srv with
          | Some p -> Obs.Log.info "serve: /metrics on http://127.0.0.1:%d" p
          | None -> ());
          let s = Refill_serve.Server.wait srv in
          print_stream_summary s;
          0)

let serve_cmd =
  let port =
    Arg.(
      value & opt int 7733
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (0 picks an ephemeral port).")
  in
  let http_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "http-port" ] ~docv:"PORT"
          ~doc:"Also serve a Prometheus /metrics endpoint on $(docv).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Resume from $(docv) if it exists; write the live frontier \
             back to it periodically and at shutdown (leaving the frontier \
             open for the next resume).  Without this flag, shutdown \
             flushes every open packet instead.")
  in
  let checkpoint_interval =
    Arg.(
      value & opt float 30.0
      & info [ "checkpoint-interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between periodic checkpoints (with --checkpoint).")
  in
  let emit_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-file" ] ~docv:"FILE"
          ~doc:
            "Write each emitted flow outcome as one text line to $(docv) — \
             the same format `reconstruct --stream --emit-file` writes.")
  in
  let emit_socket =
    Arg.(
      value
      & opt (some int) None
      & info [ "emit-socket" ] ~docv:"PORT"
          ~doc:
            "Publish emitted flow outcomes to TCP subscribers on loopback \
             $(docv) (best-effort tap: slow subscribers are dropped).")
  in
  let read_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "read-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Kill a connection that sends nothing for $(docv) seconds (0 \
             disables).")
  in
  let max_frame =
    Arg.(
      value
      & opt int Refill_serve.Wire.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Maximum accepted frame payload (negotiated to clients).")
  in
  let queue_capacity =
    Arg.(
      value & opt int 64
      & info [ "queue-segments" ] ~docv:"N"
          ~doc:
            "Ingest queue bound in segments; connections whose frames \
             would exceed it stop being read until the stream drains \
             (backpressure).")
  in
  let sink =
    Arg.(
      value & opt int 0
      & info [ "sink" ] ~docv:"NODE"
          ~doc:
            "The topology's backbone sink node (what a dump header calls \
             sink; `refill simulate` prints it).")
  in
  let doc = "Run a live ingestion server feeding the streaming pipeline." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Listens for refill-wire connections (see `refill feed`), assigns \
         every accepted record batch a global stream position in arrival \
         order, and feeds the same streaming reconstruction `reconstruct \
         --stream` runs offline — sharded across domains with --shards.  \
         Flow outcomes can be written to a file (--emit-file) and/or \
         streamed to subscribers (--emit-socket).";
      `P
        "SIGTERM and SIGINT stop the server gracefully: already-acked \
         record batches are drained into the stream, a final checkpoint is \
         written (with --checkpoint), and the process exits 0.  A later \
         `refill serve --checkpoint` resumes byte-identically.";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(
      const serve $ obs_opts_term $ config_term $ port $ http_port
      $ checkpoint $ checkpoint_interval $ emit_file $ emit_socket
      $ read_timeout $ max_frame $ queue_capacity $ sink)

let feed obs port chunk pipelined input =
  with_observability obs @@ fun () ->
  (* Retry briefly so `serve ... & feed ...` scripts need no sleep. *)
  let rec connect tries =
    match Refill_serve.Client.connect ~port () with
    | c -> c
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) when tries > 0 ->
        Unix.sleepf 0.1;
        connect (tries - 1)
  in
  match connect 50 with
  | exception Unix.Unix_error (e, _, _) ->
      err_exit
        (Refill.Error.Io
           {
             path = Printf.sprintf "tcp://127.0.0.1:%d" port;
             message = Unix.error_message e;
           })
  | client ->
      Refill_serve.Client.feed_file ~chunk ~lockstep:(not pipelined) client
        input;
      let ack = Refill_serve.Client.finish client in
      let st = Refill_serve.Client.stats client in
      Printf.printf
        "fed %d records in %d frames (%d payload bytes); server acked \
         %d/%d; ack rtt p50 %.6fs p99 %.6fs\n"
        st.records st.frames st.bytes ack.frames ack.records st.rtt_p50
        st.rtt_p99;
      0

let feed_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LOGFILE" ~doc:"Log dump produced by `refill simulate`.")
  in
  let port =
    Arg.(
      value & opt int 7733
      & info [ "port" ] ~docv:"PORT" ~doc:"Server port to connect to.")
  in
  let chunk =
    Arg.(
      value & opt int 512
      & info [ "chunk" ] ~docv:"N" ~doc:"Records per data frame.")
  in
  let pipelined =
    Arg.(
      value & flag
      & info [ "pipelined" ]
          ~doc:
            "Send frames back to back and collect acks at the end, instead \
             of one frame per ack round-trip (lockstep).")
  in
  let doc = "Feed a log dump to a running `refill serve` over TCP." in
  Cmd.v
    (Cmd.info "feed" ~doc)
    Term.(const feed $ obs_opts_term $ port $ chunk $ pipelined $ input)

(* -- main ---------------------------------------------------------------------- *)

let () =
  let doc =
    "REFILL: reconstruct network behavior from individual and lossy logs"
  in
  let info = Cmd.info "refill" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            simulate_cmd;
            analyze_cmd;
            reconstruct_cmd;
            serve_cmd;
            feed_cmd;
            trace_cmd;
            explain_cmd;
            figures_cmd;
            report_cmd;
            check_cmd;
          ]))
